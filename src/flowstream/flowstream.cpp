#include "flowstream/flowstream.hpp"

#include <algorithm>
#include <chrono>

#include "common/error.hpp"
#include "common/logging.hpp"

namespace megads::flowstream {

namespace {

flowtree::FlowtreeConfig with_budget(flowtree::FlowtreeConfig config,
                                     std::size_t budget) {
  config.node_budget = std::max<std::size_t>(2, budget);
  return config;
}

}  // namespace

Flowstream::Flowstream(sim::Simulator& sim, FlowstreamConfig config)
    : sim_(&sim), config_(std::move(config)), network_(sim, topology_),
      transport_(network_),
      db_(config_.tree), sampling_rng_(config_.sampling_seed) {
  expects(config_.regions > 0 && config_.routers_per_region > 0,
          "Flowstream: need at least one region and router");
  expects(config_.epoch > 0, "Flowstream: epoch must be positive");
  expects(config_.ingest_sampling > 0.0 && config_.ingest_sampling <= 1.0,
          "Flowstream: ingest_sampling must be in (0, 1]");

  cloud_node_ = topology_.add_node("cloud", 2);

  std::uint32_t next_store = 0;
  for (std::size_t r = 0; r < config_.regions; ++r) {
    RegionNode region;
    const std::string region_name = "region-" + std::to_string(r);
    region.store =
        std::make_unique<store::DataStore>(StoreId(next_store++), region_name);
    region.net_node = topology_.add_node(region_name, 1);
    topology_.add_link(region.net_node, cloud_node_, config_.region_uplink_latency,
                       config_.region_uplink_bps);

    store::SlotConfig slot;
    slot.name = "flowtree/region";
    slot.factory = [tree = with_budget(config_.tree, config_.region_budget)] {
      return std::make_unique<flowtree::Flowtree>(tree);
    };
    slot.epoch = config_.epoch * 8;  // coarser time granularity upstream
    slot.storage =
        std::make_unique<store::RoundRobinStorage>(config_.router_storage_bytes * 8);
    slot.live_budget = config_.region_budget;
    slot.subscribe_all = true;
    region.slot = region.store->install(std::move(slot));
    regions_.push_back(std::move(region));
  }

  routers_.resize(config_.regions);
  for (std::size_t r = 0; r < config_.regions; ++r) {
    for (std::size_t j = 0; j < config_.routers_per_region; ++j) {
      RouterNode router;
      router.store = std::make_unique<store::DataStore>(StoreId(next_store++),
                                                        router_location(r, j));
      router.net_node = topology_.add_node(router_location(r, j), 0);
      router.uplink =
          topology_.add_link(router.net_node, regions_[r].net_node,
                             config_.router_uplink_latency,
                             config_.router_uplink_bps);

      store::SlotConfig slot;
      slot.name = "flowtree/router";
      slot.factory = [tree = with_budget(config_.tree, config_.router_budget)] {
        return std::make_unique<flowtree::Flowtree>(tree);
      };
      slot.epoch = config_.epoch;
      slot.storage =
          std::make_unique<store::RoundRobinStorage>(config_.router_storage_bytes);
      slot.live_budget = config_.router_budget;
      slot.subscribe_all = true;
      router.slot = router.store->install(std::move(slot));
      routers_[r].push_back(std::move(router));
    }
  }
}

std::string Flowstream::router_location(std::size_t region,
                                        std::size_t router) const {
  return "router-" + std::to_string(region) + "." + std::to_string(router);
}

store::DataStore& Flowstream::router_store(std::size_t region, std::size_t router) {
  expects(region < routers_.size() && router < routers_[region].size(),
          "Flowstream: bad router coordinates");
  return *routers_[region][router].store;
}

store::DataStore& Flowstream::region_store(std::size_t region) {
  expects(region < regions_.size(), "Flowstream: bad region index");
  return *regions_[region].store;
}

net::LinkId Flowstream::router_uplink(std::size_t region,
                                      std::size_t router) const {
  expects(region < routers_.size() && router < routers_[region].size(),
          "Flowstream: bad router coordinates");
  return routers_[region][router].uplink;
}

AggregatorId Flowstream::router_slot(std::size_t region, std::size_t router) const {
  expects(region < routers_.size() && router < routers_[region].size(),
          "Flowstream: bad router coordinates");
  return routers_[region][router].slot;
}

AggregatorId Flowstream::region_slot(std::size_t region) const {
  expects(region < regions_.size(), "Flowstream: bad region index");
  return regions_[region].slot;
}

bool Flowstream::sample_record(const flow::FlowRecord& record,
                               primitives::StreamItem& item) {
  ++flows_offered_;
  double weight = static_cast<double>(record.bytes);
  if (config_.ingest_sampling < 1.0) {
    // Router-side sampling with Horvitz-Thompson rescaling: totals stay
    // unbiased, per-flow detail becomes statistical (the paper's premise
    // for why Flowtree need not be exact).
    if (!sampling_rng_.bernoulli(config_.ingest_sampling)) return false;
    weight /= config_.ingest_sampling;
  }
  ++flows_sampled_;
  item.key = record.key;
  item.value = weight;
  item.timestamp = record.timestamp;
  return true;
}

void Flowstream::ingest(std::size_t region, std::size_t router,
                        const flow::FlowRecord& record) {
  expects(region < routers_.size() && router < routers_[region].size(),
          "Flowstream: bad router coordinates");
  primitives::StreamItem item;
  if (!sample_record(record, item)) return;
  routers_[region][router].store->ingest(SensorId(0), item);
}

void Flowstream::ingest_batch(std::size_t region, std::size_t router,
                              std::span<const flow::FlowRecord> records) {
  expects(region < routers_.size() && router < routers_[region].size(),
          "Flowstream: bad router coordinates");
  if (records.empty()) return;
  std::vector<primitives::StreamItem> items;
  items.reserve(records.size());
  primitives::StreamItem item;
  for (const flow::FlowRecord& record : records) {
    if (sample_record(record, item)) items.push_back(item);
  }
  if (items.empty()) return;
  routers_[region][router].store->ingest_batch(SensorId(0), items);
}

void Flowstream::set_parallelism(ThreadPool& pool, std::size_t shards) {
  for (auto& region : routers_) {
    for (auto& router : region) router.store->set_parallelism(pool, shards);
  }
  for (auto& region : regions_) region.store->set_parallelism(pool, shards);
  db_.set_thread_pool(&pool);
}

void Flowstream::attach_lineage(lineage::Recorder& recorder) {
  lineage_ = &recorder;
  for (auto& region : routers_) {
    for (auto& router : region) router.store->attach_lineage(recorder);
  }
  for (auto& region : regions_) region.store->attach_lineage(recorder);
}

void Flowstream::attach_metrics(metrics::MetricsRegistry& registry) {
  metrics_ = &registry;
  for (auto& region : routers_) {
    for (auto& router : region) router.store->attach_metrics(registry);
  }
  for (auto& region : regions_) region.store->attach_metrics(registry);
  transport_.attach_metrics(registry);
  db_.attach_metrics(registry);
  metric_exports_ = &registry.counter("flowstream.exports");
  metric_export_bytes_ = &registry.counter("flowstream.export_wire_bytes");
  metric_indexed_ = &registry.counter("flowstream.summaries_indexed");
  metric_query_us_ = &registry.histogram("flowql.query_us");
}

void Flowstream::export_tick(std::size_t region, std::size_t router, SimTime now) {
  RouterNode& node = routers_[region][router];
  node.store->advance_to(now);
  const TimeInterval window{node.last_export, now};
  if (window.empty()) return;

  // Network-failure tolerance (Table I, challenge 4): when the uplink or the
  // cloud is unreachable, defer — last_export stays put, so the next tick
  // retries with a window covering everything missed. Sealed partitions wait
  // in the router's local storage meanwhile (bounded by its budget).
  if (transport_.transfer_time_unloaded(node.net_node, regions_[region].net_node,
                                        1) == kTimeNever ||
      transport_.transfer_time_unloaded(node.net_node, cloud_node_, 1) ==
          kTimeNever) {
    MEGADS_LOG(kInfo) << router_location(region, router)
                      << ": uplink down, deferring export of "
                      << format_interval(window);
    return;
  }
  node.last_export = now;

  const auto summary = node.store->snapshot(node.slot, window);
  auto* tree = dynamic_cast<flowtree::Flowtree*>(summary.get());
  expects(tree != nullptr, "Flowstream: router slot is not a Flowtree");
  if (tree->total_weight() <= 0.0) return;

  // Section III.C: apply the export privacy policy before anything leaves
  // the router. The local store keeps its full-granularity partitions.
  if (config_.export_policy.max_depth >= 0) {
    tree->generalize_deeper_than(config_.export_policy.max_depth);
  }
  if (config_.export_policy.suppress_below > 0.0) {
    tree->suppress_below(config_.export_policy.suppress_below);
  }

  // Lineage: the export is an entity derived from the partitions it covers.
  lineage::EntityId export_entity = lineage::kNoEntity;
  if (lineage_ != nullptr) {
    const auto inputs = node.store->partition_entities(node.slot, window);
    if (!inputs.empty()) {
      export_entity = lineage_->add_entity(
          lineage::EntityKind::kExport,
          "export " + router_location(region, router) + format_interval(window),
          now);
      lineage_->add_transform(lineage::TransformKind::kExport, inputs,
                              export_entity, now);
    }
  }

  // Arrow 3: ship the encoded tree to the regional store...
  auto encoded = std::make_shared<std::vector<std::uint8_t>>(tree->encode());
  if (metrics_ != nullptr) {
    metric_exports_->add();
    // The encoded summary leaves the router twice: once toward the regional
    // store and once toward the cloud index.
    metric_export_bytes_->add(2 * encoded->size());
  }
  RegionNode& parent = regions_[region];
  store::DataStore* region_store_ptr = parent.store.get();
  const AggregatorId region_slot_id = parent.slot;
  const flowtree::FlowtreeConfig tree_config = config_.tree;
  transport_.send(node.net_node, parent.net_node, encoded->size(),
                [encoded, region_store_ptr, region_slot_id, tree_config,
                 export_entity](SimTime at) {
                  const flowtree::Flowtree received =
                      flowtree::Flowtree::decode(*encoded, tree_config);
                  region_store_ptr->advance_to(
                      std::max(region_store_ptr->now(), at));
                  region_store_ptr->absorb_with_lineage(region_slot_id, received,
                                                        export_entity);
                });

  // ...and arrow 4: ship it onward to the cloud's FlowDB index.
  auto* db = &db_;
  const std::string location = router_location(region, router);
  transport_.send(node.net_node, cloud_node_, encoded->size(),
                [this, encoded, db, window, location, export_entity](SimTime at) {
                  db->add_encoded(*encoded, window, location);
                  ++summaries_indexed_;
                  if (metric_indexed_ != nullptr) metric_indexed_->add();
                  if (lineage_ != nullptr && export_entity != lineage::kNoEntity) {
                    const lineage::EntityId indexed = lineage_->add_entity(
                        lineage::EntityKind::kPartition,
                        "flowdb/" + location + format_interval(window), at);
                    const lineage::EntityId inputs[] = {export_entity};
                    lineage_->add_transform(lineage::TransformKind::kAbsorb,
                                            inputs, indexed, at);
                  }
                });
}

void Flowstream::start() {
  expects(!started_, "Flowstream::start: already started");
  started_ = true;
  for (std::size_t r = 0; r < routers_.size(); ++r) {
    for (std::size_t j = 0; j < routers_[r].size(); ++j) {
      sim_->schedule_periodic(config_.epoch, [this, r, j](SimTime now) {
        export_tick(r, j, now);
      });
    }
  }
}

flowdb::Table Flowstream::query(const std::string& statement) const {
  if (metric_query_us_ == nullptr) return flowdb::run_flowql(statement, db_);
  const auto started = std::chrono::steady_clock::now();
  flowdb::Table table = flowdb::run_flowql(statement, db_);
  const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - started);
  metric_query_us_->observe(static_cast<double>(elapsed.count()));
  return table;
}

}  // namespace megads::flowstream
