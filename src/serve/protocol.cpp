#include "serve/protocol.hpp"

#include "common/error.hpp"

namespace megads::serve {

namespace {

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void put_string(std::vector<std::uint8_t>& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

/// Bounds-checked cursor — the envelope Reader discipline: every read
/// validates against the buffer end, a hostile length fails loudly.
class Reader {
 public:
  explicit Reader(const std::vector<std::uint8_t>& bytes) : bytes_(bytes) {}

  [[nodiscard]] std::size_t remaining() const { return bytes_.size() - pos_; }

  std::uint8_t u8() {
    need(1, "u8");
    return bytes_[pos_++];
  }
  std::uint16_t u16() {
    need(2, "u16");
    std::uint16_t v = 0;
    for (int i = 0; i < 2; ++i) {
      v = static_cast<std::uint16_t>(v |
                                     (std::uint16_t{bytes_[pos_++]} << (8 * i)));
    }
    return v;
  }
  std::uint32_t u32() {
    need(4, "u32");
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t{bytes_[pos_++]} << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    need(8, "u64");
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{bytes_[pos_++]} << (8 * i);
    return v;
  }
  std::string string() {
    const std::uint32_t len = u32();
    need(len, "string field");
    std::string out(bytes_.begin() + static_cast<std::ptrdiff_t>(pos_),
                    bytes_.begin() + static_cast<std::ptrdiff_t>(pos_ + len));
    pos_ += len;
    return out;
  }
  void expect_done() const {
    if (remaining() != 0) throw ParseError("serve: trailing bytes");
  }

 private:
  void need(std::size_t n, const char* what) const {
    if (n > remaining()) {
      throw ParseError(std::string("serve: truncated ") + what);
    }
  }

  const std::vector<std::uint8_t>& bytes_;
  std::size_t pos_ = 0;
};

}  // namespace

std::vector<std::uint8_t> encode(const Request& request) {
  std::vector<std::uint8_t> out;
  put_u8(out, kProtocolVersion);
  put_u8(out, static_cast<std::uint8_t>(request.type));
  put_u64(out, request.request_id);
  switch (request.type) {
    case RequestType::kQuery: {
      const auto& body = std::get<QueryBody>(request.body);
      put_u32(out, body.deadline_ms);
      put_u8(out, body.priority);
      put_string(out, body.statement);
      break;
    }
    case RequestType::kMetrics:
      break;
    case RequestType::kSubscribe: {
      const auto& body = std::get<SubscribeBody>(request.body);
      put_u32(out, body.period_ms);
      put_string(out, body.statement);
      break;
    }
    case RequestType::kUnsubscribe: {
      put_u64(out, std::get<UnsubscribeBody>(request.body).subscription_id);
      break;
    }
    case RequestType::kPing:
      break;
  }
  return out;
}

std::vector<std::uint8_t> encode(const Response& response) {
  std::vector<std::uint8_t> out;
  put_u8(out, kProtocolVersion);
  put_u8(out, static_cast<std::uint8_t>(response.type));
  put_u64(out, response.request_id);
  switch (response.type) {
    case ResponseType::kResultChunk: {
      const auto& body = std::get<ResultChunkBody>(response.body);
      put_u32(out, body.seq);
      put_u8(out, body.last ? 1 : 0);
      put_string(out, body.chunk);
      break;
    }
    case ResponseType::kMetricsText:
      put_string(out, std::get<MetricsTextBody>(response.body).text);
      break;
    case ResponseType::kError: {
      const auto& body = std::get<ErrorBody>(response.body);
      put_u16(out, static_cast<std::uint16_t>(body.code));
      put_string(out, body.message);
      break;
    }
    case ResponseType::kSubscribed:
      put_u64(out, std::get<SubscribedBody>(response.body).subscription_id);
      break;
    case ResponseType::kEvent: {
      const auto& body = std::get<EventBody>(response.body);
      put_u64(out, body.subscription_id);
      put_u32(out, body.seq);
      put_string(out, body.text);
      break;
    }
    case ResponseType::kPong:
      break;
  }
  return out;
}

Request decode_request(const std::vector<std::uint8_t>& bytes) {
  Reader r(bytes);
  if (r.u8() != kProtocolVersion) throw ParseError("serve: unknown version");
  const std::uint8_t raw_type = r.u8();
  Request request;
  request.request_id = r.u64();
  switch (raw_type) {
    case static_cast<std::uint8_t>(RequestType::kQuery): {
      request.type = RequestType::kQuery;
      QueryBody body;
      body.deadline_ms = r.u32();
      body.priority = r.u8();
      body.statement = r.string();
      request.body = std::move(body);
      break;
    }
    case static_cast<std::uint8_t>(RequestType::kMetrics):
      request.type = RequestType::kMetrics;
      request.body = MetricsBody{};
      break;
    case static_cast<std::uint8_t>(RequestType::kSubscribe): {
      request.type = RequestType::kSubscribe;
      SubscribeBody body;
      body.period_ms = r.u32();
      body.statement = r.string();
      request.body = std::move(body);
      break;
    }
    case static_cast<std::uint8_t>(RequestType::kUnsubscribe): {
      request.type = RequestType::kUnsubscribe;
      request.body = UnsubscribeBody{r.u64()};
      break;
    }
    case static_cast<std::uint8_t>(RequestType::kPing):
      request.type = RequestType::kPing;
      request.body = PingBody{};
      break;
    default:
      throw ParseError("serve: unknown request type");
  }
  r.expect_done();
  return request;
}

Response decode_response(const std::vector<std::uint8_t>& bytes) {
  Reader r(bytes);
  if (r.u8() != kProtocolVersion) throw ParseError("serve: unknown version");
  const std::uint8_t raw_type = r.u8();
  Response response;
  response.request_id = r.u64();
  switch (raw_type) {
    case static_cast<std::uint8_t>(ResponseType::kResultChunk): {
      response.type = ResponseType::kResultChunk;
      ResultChunkBody body;
      body.seq = r.u32();
      const std::uint8_t last = r.u8();
      if (last > 1) throw ParseError("serve: bad last-chunk flag");
      body.last = last == 1;
      body.chunk = r.string();
      response.body = std::move(body);
      break;
    }
    case static_cast<std::uint8_t>(ResponseType::kMetricsText):
      response.type = ResponseType::kMetricsText;
      response.body = MetricsTextBody{r.string()};
      break;
    case static_cast<std::uint8_t>(ResponseType::kError): {
      response.type = ResponseType::kError;
      ErrorBody body;
      const std::uint16_t code = r.u16();
      if (code < 1 || code > 5) throw ParseError("serve: unknown error code");
      body.code = static_cast<ErrorCode>(code);
      body.message = r.string();
      response.body = std::move(body);
      break;
    }
    case static_cast<std::uint8_t>(ResponseType::kSubscribed):
      response.type = ResponseType::kSubscribed;
      response.body = SubscribedBody{r.u64()};
      break;
    case static_cast<std::uint8_t>(ResponseType::kEvent): {
      response.type = ResponseType::kEvent;
      EventBody body;
      body.subscription_id = r.u64();
      body.seq = r.u32();
      body.text = r.string();
      response.body = std::move(body);
      break;
    }
    case static_cast<std::uint8_t>(ResponseType::kPong):
      response.type = ResponseType::kPong;
      response.body = PongBody{};
      break;
    default:
      throw ParseError("serve: unknown response type");
  }
  r.expect_done();
  return response;
}

}  // namespace megads::serve
