// Client protocol of the FlowQL serving tier. Every message rides the outer
// length-prefixed framing (net/framing.hpp); this header defines the inner
// payload: a 1-byte version, a 1-byte type, a u64 request id, then a typed
// body. All integers little-endian; every variable-length field carries an
// explicit length prefix (the PR 6 envelope codec discipline: the decoder
// either returns a fully validated message or throws ParseError — never a
// half-parsed state; fuzz/fuzz_serve_frame.cpp drives the contract through
// the reassembler).
//
// Request/response flow:
//   kQuery        -> one or more kResultChunk frames (seq-numbered, the last
//                    marked; large tables stream without a giant frame), or
//                    one kError.
//   kMetrics      -> kMetricsText (the registry snapshot dump) or kError.
//   kSubscribe    -> kSubscribed carrying the subscription id; the server
//                    then pushes kEvent frames every period until
//                    kUnsubscribe or disconnect.
//   kPing         -> kPong (liveness / RTT floor).
//
// Overloaded servers shed with kError code kOverload — the distinct wire
// code admission control uses, so clients can tell "back off" from "your
// query is wrong".
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace megads::serve {

inline constexpr std::uint8_t kProtocolVersion = 1;

enum class RequestType : std::uint8_t {
  kQuery = 1,
  kMetrics = 2,
  kSubscribe = 3,
  kUnsubscribe = 4,
  kPing = 5,
};

enum class ResponseType : std::uint8_t {
  kResultChunk = 16,
  kMetricsText = 17,
  kError = 18,
  kSubscribed = 19,
  kEvent = 20,
  kPong = 21,
};

/// Wire error codes (u16). kOverload is the admission-control shed signal.
enum class ErrorCode : std::uint16_t {
  kParse = 1,     ///< FlowQL syntax error
  kExec = 2,      ///< execution failed (bad selection, precondition, ...)
  kOverload = 3,  ///< shed by admission control / deadline expiry
  kBadRequest = 4,
  kTooLarge = 5,
};

struct QueryBody {
  std::uint32_t deadline_ms = 0;  ///< 0 = server default
  std::uint8_t priority = 0;      ///< dequeue order: higher first, FIFO within
  std::string statement;
};
struct MetricsBody {};
struct SubscribeBody {
  std::uint32_t period_ms = 0;
  std::string statement;
};
struct UnsubscribeBody {
  std::uint64_t subscription_id = 0;
};
struct PingBody {};

struct Request {
  RequestType type = RequestType::kQuery;
  std::uint64_t request_id = 0;
  std::variant<QueryBody, MetricsBody, SubscribeBody, UnsubscribeBody, PingBody>
      body;
};

struct ResultChunkBody {
  std::uint32_t seq = 0;
  bool last = false;
  std::string chunk;  ///< a slice of the rendered table text
};
struct MetricsTextBody {
  std::string text;
};
struct ErrorBody {
  ErrorCode code = ErrorCode::kBadRequest;
  std::string message;
};
struct SubscribedBody {
  std::uint64_t subscription_id = 0;
};
struct EventBody {
  std::uint64_t subscription_id = 0;
  std::uint32_t seq = 0;
  std::string text;
};
struct PongBody {};

struct Response {
  ResponseType type = ResponseType::kError;
  std::uint64_t request_id = 0;
  std::variant<ResultChunkBody, MetricsTextBody, ErrorBody, SubscribedBody,
               EventBody, PongBody>
      body;
};

[[nodiscard]] std::vector<std::uint8_t> encode(const Request& request);
[[nodiscard]] std::vector<std::uint8_t> encode(const Response& response);

/// Parse and validate; throws ParseError on any malformed input.
[[nodiscard]] Request decode_request(const std::vector<std::uint8_t>& bytes);
[[nodiscard]] Response decode_response(const std::vector<std::uint8_t>& bytes);

}  // namespace megads::serve
