// FlowQLServer — the serving tier (ROADMAP item 1): a socket frontend that
// exposes FlowQL, the metrics registry, and periodic subscription streams to
// many concurrent clients over the outer framing (net/framing.hpp) and the
// serve protocol (serve/protocol.hpp).
//
// Architecture: one poll-based event-loop thread owns every socket — accept,
// torn-read reassembly, request decode, and all writes. Query execution never
// runs on the loop: decoded kQuery requests go through the RequestScheduler
// (admission control + load shedding) onto a shared ThreadPool, and execute
// against the shared SummarySource — a FlowDB (one writer / many readers, so
// N workers query while ingest continues) or a partitioned Coordinator, the
// server cannot tell which (the distribution-transparency contract).
//
// Worker -> loop handoff: a worker appends encoded response frames to the
// session's mu-guarded outbox (rank kServeSession), marks the session dirty
// under the server mutex (rank kServeServer), and wakes the loop through the
// pipe; the loop splices outboxes into per-connection write buffers and
// flushes them POLLOUT-driven. The two locks are never nested with anything
// below them — neither is ever held across query execution or a socket call.
//
// Overload posture: shed requests are answered immediately with kError code
// kOverload (queue full / infeasible deadline / expired in queue — the
// message says which), so clients distinguish "back off" from "your query is
// wrong". A client that stops reading while responses accumulate past
// max_write_buffer is closed (slow-client cutoff) — one stalled dashboard
// cannot pin the server's memory.
//
// Large results stream as seq-numbered kResultChunk frames of chunk_bytes
// each, so a megarow table never materializes as one giant frame and
// interactive queries interleave fairly on the wire.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.hpp"
#include "common/mutex.hpp"
#include "common/thread_pool.hpp"
#include "flowdb/plan/planner.hpp"
#include "flowdb/source.hpp"
#include "net/framing.hpp"
#include "net/socket.hpp"
#include "serve/protocol.hpp"
#include "serve/scheduler.hpp"

namespace megads::serve {

class FlowQLServer {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;  ///< 0 = kernel-assigned; see port()
    /// Query-execution concurrency (pool workers). The event loop is not a
    /// pool thread, so this is exactly the number of in-flight queries.
    std::size_t workers = 2;
    RequestScheduler::Options scheduler;
    /// kResultChunk payload size for streamed tables.
    std::size_t chunk_bytes = 64u << 10;
    /// Max inbound frame payload (requests are small; a huge declared
    /// length is hostile input and closes the connection).
    std::size_t max_frame_bytes = 1u << 20;
    /// Slow-client cutoff: pending unsent response bytes above this close
    /// the connection.
    std::size_t max_write_buffer = 8u << 20;
    /// Accept cap; connections past it are closed immediately (counted).
    std::size_t max_connections = 12000;
    std::uint32_t min_subscribe_period_ms = 10;
  };

  struct Stats {
    std::uint64_t connections_accepted = 0;
    std::uint64_t connections_rejected = 0;  ///< over max_connections
    std::uint64_t active_connections = 0;
    std::uint64_t requests = 0;        ///< well-formed requests decoded
    std::uint64_t bad_requests = 0;    ///< undecodable inner payloads
    std::uint64_t dropped_frames = 0;  ///< outer-framing violations
    std::uint64_t slow_client_closed = 0;
    std::uint64_t events_pushed = 0;
    std::uint64_t subscriptions_active = 0;
    std::uint64_t bytes_in = 0;
    std::uint64_t bytes_out = 0;
    RequestScheduler::Stats sched;
  };

  /// The source must outlive the server. For a FlowDB source, writers may
  /// keep ingesting concurrently — the serving path only reads.
  explicit FlowQLServer(const flowdb::SummarySource& source)
      : FlowQLServer(source, Options()) {}
  FlowQLServer(const flowdb::SummarySource& source, Options options);
  ~FlowQLServer();

  FlowQLServer(const FlowQLServer&) = delete;
  FlowQLServer& operator=(const FlowQLServer&) = delete;

  /// Bind, listen, and start the event loop. Throws Error on bind failure.
  void start();
  /// Stop accepting, close every connection, drain admitted work, join.
  /// Idempotent; the destructor calls it.
  void stop();

  /// The actually-bound listen port (resolves port 0 requests).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  [[nodiscard]] Stats stats() const MEGADS_EXCLUDES(mu_);

  /// Registers serve.* instruments, forwards to the scheduler's
  /// attach_metrics, and makes `registry` the target of kMetrics requests.
  void attach_metrics(metrics::MetricsRegistry& registry)
      MEGADS_EXCLUDES(mu_);

  [[nodiscard]] const RequestScheduler& scheduler() const noexcept {
    return scheduler_;
  }

  /// The server-wide planner: every query (and subscription tick) runs
  /// through it, so concurrent identical folds share and repeat history
  /// accumulates across clients.
  [[nodiscard]] const flowdb::plan::QueryPlanner& planner() const noexcept {
    return planner_;
  }

 private:
  /// Shared between the loop (scheduling/reaping) and the pool worker
  /// running a tick — hence shared_ptr storage and atomic flags. id/
  /// statement/period_ms are immutable after creation; next_due_us is loop
  /// thread only; seq is touched only by the (single, in_flight-serialized)
  /// tick worker.
  struct Subscription {
    std::uint64_t id = 0;
    std::string statement;
    std::uint32_t period_ms = 0;
    std::uint64_t next_due_us = 0;
    std::uint32_t seq = 0;
    std::atomic<bool> in_flight{false};  ///< a tick's query is on the pool
    std::atomic<bool> active{true};      ///< cleared by unsubscribe/close
  };

  /// One client connection. The loop thread owns fd/reassembler/write_buf/
  /// subs exclusively; workers reach only the mu-guarded outbox.
  struct Session {
    explicit Session(net::ScopedFd sock, std::size_t max_frame)
        : fd(sock.get()), socket(std::move(sock)), reassembler(max_frame) {}

    const int fd;
    net::ScopedFd socket;
    net::FrameReassembler reassembler;   // loop thread only
    std::vector<std::uint8_t> write_buf;  // loop thread only
    std::size_t write_pos = 0;            // loop thread only
    std::map<std::uint64_t, std::shared_ptr<Subscription>> subs;  // loop only

    Mutex mu{lockrank::kServeSession, "serve.session"};
    std::vector<std::uint8_t> outbox MEGADS_GUARDED_BY(mu);
    bool closed MEGADS_GUARDED_BY(mu) = false;
  };
  using SessionPtr = std::shared_ptr<Session>;

  void loop() MEGADS_EXCLUDES(mu_);
  void accept_ready() MEGADS_EXCLUDES(mu_);
  /// Read + dispatch; false when the connection died.
  bool service_readable(const SessionPtr& session) MEGADS_EXCLUDES(mu_);
  /// Flush write_buf; false when the connection died.
  bool flush_writable(const SessionPtr& session) MEGADS_EXCLUDES(mu_);
  void close_session(const SessionPtr& session) MEGADS_EXCLUDES(mu_);
  /// Decode + route one inner payload (loop thread).
  void handle_payload(const SessionPtr& session,
                      const std::vector<std::uint8_t>& payload)
      MEGADS_EXCLUDES(mu_);
  void handle_query(const SessionPtr& session, std::uint64_t request_id,
                    QueryBody body) MEGADS_EXCLUDES(mu_);
  void handle_subscribe(const SessionPtr& session, std::uint64_t request_id,
                        const SubscribeBody& body) MEGADS_EXCLUDES(mu_);
  /// Fire due subscription ticks; returns the poll timeout (ms) until the
  /// next one (-1 = none pending).
  int service_subscriptions() MEGADS_EXCLUDES(mu_);

  /// Execute `statement` and stream the rendered table as kResultChunk
  /// frames (worker thread; exceptions become kError responses).
  void execute_and_respond(const SessionPtr& session, std::uint64_t request_id,
                           const std::string& statement);
  /// Any thread: append an encoded response frame to the session outbox,
  /// mark it dirty, wake the loop.
  void send_response(const SessionPtr& session, const Response& response)
      MEGADS_EXCLUDES(mu_);
  /// Loop thread: splice the outbox into write_buf and flush once.
  bool drain_outbox(const SessionPtr& session) MEGADS_EXCLUDES(mu_);

  [[nodiscard]] std::uint64_t now_us() const noexcept;

  const flowdb::SummarySource& source_;
  const Options options_;
  ThreadPool pool_;
  RequestScheduler scheduler_;
  /// Internally synchronized; shared by all pool workers so concurrent
  /// identical sub-merges coalesce (plan.shared_folds).
  flowdb::plan::QueryPlanner planner_;

  std::uint16_t port_ = 0;
  net::ScopedFd listen_fd_;
  net::WakePipe wake_;
  std::thread loop_thread_;
  bool started_ = false;
  std::uint64_t next_subscription_id_ = 1;  // loop thread only

  mutable Mutex mu_{lockrank::kServeServer, "serve.server"};
  bool stopping_ MEGADS_GUARDED_BY(mu_) = false;
  std::map<int, SessionPtr> sessions_ MEGADS_GUARDED_BY(mu_);
  std::set<int> dirty_ MEGADS_GUARDED_BY(mu_);
  Stats stats_ MEGADS_GUARDED_BY(mu_);
  metrics::MetricsRegistry* registry_ MEGADS_GUARDED_BY(mu_) = nullptr;
  metrics::Counter* metric_connections_ MEGADS_GUARDED_BY(mu_) = nullptr;
  metrics::Counter* metric_requests_ MEGADS_GUARDED_BY(mu_) = nullptr;
  metrics::Counter* metric_bad_requests_ MEGADS_GUARDED_BY(mu_) = nullptr;
  metrics::Counter* metric_dropped_ MEGADS_GUARDED_BY(mu_) = nullptr;
  metrics::Counter* metric_slow_closed_ MEGADS_GUARDED_BY(mu_) = nullptr;
  metrics::Counter* metric_events_ MEGADS_GUARDED_BY(mu_) = nullptr;
  metrics::Counter* metric_bytes_in_ MEGADS_GUARDED_BY(mu_) = nullptr;
  metrics::Counter* metric_bytes_out_ MEGADS_GUARDED_BY(mu_) = nullptr;
  metrics::Gauge* metric_active_conns_ MEGADS_GUARDED_BY(mu_) = nullptr;
  metrics::Gauge* metric_subscriptions_ MEGADS_GUARDED_BY(mu_) = nullptr;
};

}  // namespace megads::serve
