// RequestScheduler — admission control + bounded dispatch between the
// serving tier's event loop and the PR 3 ThreadPool.
//
// The socket loop must never block: it admits or sheds in O(1) and returns
// to poll(). Admission applies two tests up front, both against mu_-guarded
// bookkeeping (rank kServeScheduler):
//
//   1. Queue bound: at most max_queue requests admitted-but-unfinished. The
//      ThreadPool's own queue is unbounded by design (ingest fan-outs rely
//      on that); the serving tier bounds it here so a client burst turns
//      into fast kOverload rejections instead of an ever-growing backlog —
//      the load-shedding posture the paper's interactive-latency goal needs.
//   2. Deadline feasibility: an EWMA of recent service times predicts this
//      request's queue wait as depth * ewma. A request whose deadline would
//      already be spent waiting is shed *now*, while the rejection is cheap,
//      rather than discovered dead at dequeue.
//
// Admitted requests dequeue by client-supplied priority (higher first; FIFO
// within a priority): each pool worker pops the current maximum from an
// internal heap, so a dashboard-repeat storm at priority 0 cannot starve an
// operator's priority-9 drilldown. Execution is non-preemptive — a running
// low-priority request still finishes; the serve.priority_inversions counter
// tallies how often a request began execution while a strictly
// lower-priority one was still running (the inversion window that preemption
// would have closed).
//
// Admitted work still re-checks its deadline at dequeue (the EWMA is an
// estimate); expired work runs the caller's `expired` callback instead of
// the query, so the client gets a kOverload answer rather than a stale
// table. Every transition is counted; stats() reconciles exactly:
// submitted == accepted + shed_queue + shed_deadline, and
// accepted == executed + expired + queue_depth (the overload suite pins
// this invariant after drain(), when queue_depth is 0).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/metrics.hpp"
#include "common/mutex.hpp"
#include "common/thread_pool.hpp"

namespace megads::serve {

class RequestScheduler {
 public:
  struct Options {
    /// Max admitted-but-unfinished requests (queued + running).
    std::size_t max_queue = 256;
    /// Deadline applied when a request carries none (0 disables the
    /// feasibility test and dequeue expiry for that request).
    std::uint32_t default_deadline_ms = 0;
    /// EWMA smoothing for the service-time estimate.
    double ewma_alpha = 0.2;
    /// Seed for the estimate before any request completed.
    double initial_service_us = 200.0;
  };

  enum class Admit : std::uint8_t {
    kAdmitted = 0,
    kShedQueueFull = 1,
    kShedDeadline = 2,
  };

  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t accepted = 0;
    std::uint64_t shed_queue = 0;
    std::uint64_t shed_deadline = 0;
    std::uint64_t executed = 0;
    std::uint64_t expired = 0;
    /// Requests that began execution while a strictly lower-priority request
    /// was still running (non-preemptive inversion window).
    std::uint64_t priority_inversions = 0;
    std::size_t queue_depth = 0;
    double ewma_service_us = 0.0;
  };

  /// The pool must outlive the scheduler. The scheduler never owns threads;
  /// it only decides what reaches the pool.
  explicit RequestScheduler(ThreadPool& pool)
      : RequestScheduler(pool, Options()) {}
  RequestScheduler(ThreadPool& pool, Options options);
  /// Drains: blocks until every admitted request finished.
  ~RequestScheduler();

  RequestScheduler(const RequestScheduler&) = delete;
  RequestScheduler& operator=(const RequestScheduler&) = delete;

  /// Admit-or-shed. On kAdmitted, `run` executes on a pool worker unless the
  /// deadline has expired by dequeue, in which case `expired` executes
  /// instead (exactly one of the two runs, on a pool thread). On a shed
  /// verdict nothing was enqueued — the caller answers the client itself.
  /// deadline_ms is relative to now; 0 means Options::default_deadline_ms.
  /// `priority` orders dequeue (higher first, FIFO within equal priorities);
  /// admission itself is priority-blind, so a full queue sheds everyone
  /// equally.
  [[nodiscard]] Admit submit(std::uint8_t priority, std::uint32_t deadline_ms,
                             std::function<void()> run,
                             std::function<void()> expired)
      MEGADS_EXCLUDES(mu_);
  [[nodiscard]] Admit submit(std::uint32_t deadline_ms,
                             std::function<void()> run,
                             std::function<void()> expired)
      MEGADS_EXCLUDES(mu_) {
    return submit(0, deadline_ms, std::move(run), std::move(expired));
  }

  /// Block until queue_depth reaches 0 (no admission gate — callers that
  /// keep submitting can starve this; tests quiesce first).
  void drain() MEGADS_EXCLUDES(mu_);

  [[nodiscard]] Stats stats() const MEGADS_EXCLUDES(mu_);

  /// Registers serve.sched.* instruments and catches counters up to the
  /// current stats.
  void attach_metrics(metrics::MetricsRegistry& registry) MEGADS_EXCLUDES(mu_);

 private:
  struct Queued {
    std::uint8_t priority = 0;
    std::uint64_t seq = 0;  ///< admission order; FIFO tie-break
    std::uint64_t deadline_us = 0;
    std::uint64_t enqueued_us = 0;
    std::function<void()> run;
    std::function<void()> expired;
  };

  [[nodiscard]] std::uint64_t now_us() const noexcept;
  /// Pop the highest-priority (then oldest) queued request.
  [[nodiscard]] Queued pop_next() MEGADS_REQUIRES(mu_);

  ThreadPool& pool_;
  const Options options_;

  mutable Mutex mu_{lockrank::kServeScheduler, "serve.scheduler"};
  mutable CondVar drained_;
  Stats stats_ MEGADS_GUARDED_BY(mu_);
  /// Max-heap by (priority, -seq); every entry has exactly one matching
  /// pool task, so a worker's pop never finds it empty.
  std::vector<Queued> queue_ MEGADS_GUARDED_BY(mu_);
  std::uint64_t next_seq_ MEGADS_GUARDED_BY(mu_) = 0;
  /// Currently-executing requests per priority (inversion detection).
  std::array<std::uint32_t, 256> running_ MEGADS_GUARDED_BY(mu_) = {};
  metrics::Counter* metric_inversions_ MEGADS_GUARDED_BY(mu_) = nullptr;
  metrics::Counter* metric_submitted_ MEGADS_GUARDED_BY(mu_) = nullptr;
  metrics::Counter* metric_accepted_ MEGADS_GUARDED_BY(mu_) = nullptr;
  metrics::Counter* metric_shed_queue_ MEGADS_GUARDED_BY(mu_) = nullptr;
  metrics::Counter* metric_shed_deadline_ MEGADS_GUARDED_BY(mu_) = nullptr;
  metrics::Counter* metric_executed_ MEGADS_GUARDED_BY(mu_) = nullptr;
  metrics::Counter* metric_expired_ MEGADS_GUARDED_BY(mu_) = nullptr;
  metrics::Gauge* metric_queue_depth_ MEGADS_GUARDED_BY(mu_) = nullptr;
  metrics::Gauge* metric_ewma_ MEGADS_GUARDED_BY(mu_) = nullptr;
  metrics::Histogram* metric_service_us_ MEGADS_GUARDED_BY(mu_) = nullptr;
  metrics::Histogram* metric_queue_wait_us_ MEGADS_GUARDED_BY(mu_) = nullptr;
};

}  // namespace megads::serve
