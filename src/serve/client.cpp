#include "serve/client.hpp"

#include <utility>

#include "common/error.hpp"

namespace megads::serve {

Client::Client(const std::string& host, std::uint16_t port)
    : fd_(net::tcp_connect(host, port)) {
  net::set_nodelay(fd_.get());
  // The socket stays blocking: this client's contract is synchronous.
}

void Client::send_request(const Request& request) {
  const std::vector<std::uint8_t> frame = net::encode_frame(encode(request));
  std::size_t pos = 0;
  while (pos < frame.size()) {
    const net::IoResult io =
        net::write_some(fd_.get(), frame.data() + pos, frame.size() - pos);
    if (io.closed) throw Error("serve client: server closed connection");
    pos += io.bytes;
  }
}

std::optional<Response> Client::next_frame() {
  for (;;) {
    auto payload = reassembler_.next();
    if (payload.has_value()) return decode_response(*payload);
    std::uint8_t buf[64 * 1024];
    const net::IoResult io = net::read_some(fd_.get(), buf, sizeof(buf));
    if (io.closed) return std::nullopt;
    reassembler_.feed(buf, io.bytes);
  }
}

Response Client::read_response(std::uint64_t request_id) {
  for (;;) {
    auto response = next_frame();
    if (!response.has_value()) {
      throw Error("serve client: server closed connection");
    }
    if (response->type == ResponseType::kEvent) {
      const auto& body = std::get<EventBody>(response->body);
      pending_events_.push_back(
          Event{body.subscription_id, body.seq, body.text});
      continue;
    }
    if (response->request_id != request_id) continue;  // stale/late response
    return std::move(*response);
  }
}

Client::Result Client::query(const std::string& statement,
                             std::uint32_t deadline_ms, std::uint8_t priority) {
  const std::uint64_t id = next_id_++;
  send_request(Request{RequestType::kQuery, id,
                       QueryBody{deadline_ms, priority, statement}});
  Result result;
  for (;;) {
    const Response response = read_response(id);
    if (response.type == ResponseType::kError) {
      const auto& body = std::get<ErrorBody>(response.body);
      result.ok = false;
      result.code = body.code;
      result.message = body.message;
      return result;
    }
    if (response.type != ResponseType::kResultChunk) {
      throw Error("serve client: unexpected response type");
    }
    const auto& chunk = std::get<ResultChunkBody>(response.body);
    result.text += chunk.chunk;
    if (chunk.last) {
      result.ok = true;
      return result;
    }
  }
}

Client::Result Client::metrics() {
  const std::uint64_t id = next_id_++;
  send_request(Request{RequestType::kMetrics, id, MetricsBody{}});
  const Response response = read_response(id);
  Result result;
  if (response.type == ResponseType::kError) {
    const auto& body = std::get<ErrorBody>(response.body);
    result.code = body.code;
    result.message = body.message;
    return result;
  }
  if (response.type != ResponseType::kMetricsText) {
    throw Error("serve client: unexpected response type");
  }
  result.ok = true;
  result.text = std::get<MetricsTextBody>(response.body).text;
  return result;
}

std::uint64_t Client::subscribe(const std::string& statement,
                                std::uint32_t period_ms) {
  const std::uint64_t id = next_id_++;
  send_request(Request{RequestType::kSubscribe, id,
                       SubscribeBody{period_ms, statement}});
  const Response response = read_response(id);
  if (response.type == ResponseType::kError) {
    throw Error("serve client: subscribe rejected: " +
                std::get<ErrorBody>(response.body).message);
  }
  if (response.type != ResponseType::kSubscribed) {
    throw Error("serve client: unexpected response type");
  }
  return std::get<SubscribedBody>(response.body).subscription_id;
}

Client::Event Client::wait_event() {
  if (!pending_events_.empty()) {
    Event event = std::move(pending_events_.front());
    pending_events_.pop_front();
    return event;
  }
  for (;;) {
    auto response = next_frame();
    if (!response.has_value()) {
      throw Error("serve client: server closed connection");
    }
    if (response->type == ResponseType::kEvent) {
      const auto& body = std::get<EventBody>(response->body);
      return Event{body.subscription_id, body.seq, body.text};
    }
    // Anything else here is a late response to an abandoned request; drop it.
  }
}

void Client::unsubscribe(std::uint64_t subscription_id) {
  const std::uint64_t id = next_id_++;
  send_request(Request{RequestType::kUnsubscribe, id,
                       UnsubscribeBody{subscription_id}});
  const Response response = read_response(id);
  if (response.type == ResponseType::kError) {
    throw Error("serve client: unsubscribe failed: " +
                std::get<ErrorBody>(response.body).message);
  }
}

bool Client::ping() {
  const std::uint64_t id = next_id_++;
  send_request(Request{RequestType::kPing, id, PingBody{}});
  return read_response(id).type == ResponseType::kPong;
}

}  // namespace megads::serve
