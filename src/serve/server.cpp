#include "serve/server.hpp"

#include <poll.h>
#include <sys/socket.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <utility>

#include "common/error.hpp"
#include "flowdb/executor.hpp"
#include "flowdb/table.hpp"

namespace megads::serve {

FlowQLServer::FlowQLServer(const flowdb::SummarySource& source, Options options)
    : source_(source),
      options_(std::move(options)),
      // +1: the event loop submits but never executes, so `workers` is the
      // exact query-execution concurrency (ThreadPool counts the caller).
      pool_(options_.workers + 1),
      scheduler_(pool_, options_.scheduler) {}

FlowQLServer::~FlowQLServer() { stop(); }

std::uint64_t FlowQLServer::now_us() const noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void FlowQLServer::start() {
  if (started_) return;
  auto [fd, bound_port] = net::tcp_listen(options_.host, options_.port);
  listen_fd_ = std::move(fd);
  port_ = bound_port;
  net::set_nonblocking(listen_fd_.get());
  {
    const MutexLock lock(mu_);
    stopping_ = false;
  }
  loop_thread_ = std::thread([this] { loop(); });
  started_ = true;
}

void FlowQLServer::stop() {
  {
    const MutexLock lock(mu_);
    if (stopping_ && !started_) return;
    stopping_ = true;
  }
  wake_.wake();
  if (loop_thread_.joinable()) loop_thread_.join();
  started_ = false;
  // Admitted work may still be running; let it finish against live sessions
  // (responses land in outboxes that will never flush — harmless) before any
  // member is torn down.
  scheduler_.drain();
  const MutexLock lock(mu_);
  for (auto& [fd, session] : sessions_) {
    const MutexLock session_lock(session->mu);
    session->closed = true;
  }
  sessions_.clear();
  dirty_.clear();
  stats_.active_connections = 0;
  stats_.subscriptions_active = 0;
  if (metric_active_conns_ != nullptr) metric_active_conns_->set(0);
  if (metric_subscriptions_ != nullptr) metric_subscriptions_->set(0);
}

FlowQLServer::Stats FlowQLServer::stats() const {
  Stats out;
  {
    const MutexLock lock(mu_);
    out = stats_;
  }
  out.sched = scheduler_.stats();
  return out;
}

void FlowQLServer::attach_metrics(metrics::MetricsRegistry& registry) {
  scheduler_.attach_metrics(registry);
  planner_.attach_metrics(registry);
  metrics::Counter& connections = registry.counter("serve.connections");
  metrics::Counter& requests = registry.counter("serve.requests");
  metrics::Counter& bad_requests = registry.counter("serve.bad_requests");
  metrics::Counter& dropped = registry.counter("serve.dropped_frames");
  metrics::Counter& slow_closed = registry.counter("serve.slow_client_closed");
  metrics::Counter& events = registry.counter("serve.events_pushed");
  metrics::Counter& bytes_in = registry.counter("serve.bytes_in");
  metrics::Counter& bytes_out = registry.counter("serve.bytes_out");
  metrics::Gauge& active = registry.gauge("serve.active_connections");
  metrics::Gauge& subs = registry.gauge("serve.subscriptions_active");

  const MutexLock lock(mu_);
  registry_ = &registry;
  metric_connections_ = &connections;
  metric_requests_ = &requests;
  metric_bad_requests_ = &bad_requests;
  metric_dropped_ = &dropped;
  metric_slow_closed_ = &slow_closed;
  metric_events_ = &events;
  metric_bytes_in_ = &bytes_in;
  metric_bytes_out_ = &bytes_out;
  metric_active_conns_ = &active;
  metric_subscriptions_ = &subs;
  metric_connections_->add(stats_.connections_accepted);
  metric_requests_->add(stats_.requests);
  metric_bad_requests_->add(stats_.bad_requests);
  metric_dropped_->add(stats_.dropped_frames);
  metric_slow_closed_->add(stats_.slow_client_closed);
  metric_events_->add(stats_.events_pushed);
  metric_bytes_in_->add(stats_.bytes_in);
  metric_bytes_out_->add(stats_.bytes_out);
  metric_active_conns_->set(static_cast<double>(stats_.active_connections));
  metric_subscriptions_->set(static_cast<double>(stats_.subscriptions_active));
}

// ---------------------------------------------------------------------------
// Event loop
// ---------------------------------------------------------------------------

void FlowQLServer::loop() {
  std::vector<pollfd> fds;
  std::vector<SessionPtr> polled;
  for (;;) {
    // Worker -> loop handoff: splice every dirty session's outbox into its
    // write buffer before arming POLLOUT below.
    std::set<int> dirty;
    {
      const MutexLock lock(mu_);
      if (stopping_) break;
      dirty.swap(dirty_);
    }
    for (const int fd : dirty) {
      SessionPtr session;
      {
        const MutexLock lock(mu_);
        const auto it = sessions_.find(fd);
        if (it == sessions_.end()) continue;  // closed since marked dirty
        session = it->second;
      }
      if (!drain_outbox(session)) close_session(session);
    }

    const int sub_timeout_ms = service_subscriptions();

    fds.clear();
    polled.clear();
    fds.push_back({wake_.read_fd(), POLLIN, 0});
    fds.push_back({listen_fd_.get(), POLLIN, 0});
    {
      const MutexLock lock(mu_);
      for (const auto& [fd, session] : sessions_) {
        short events = POLLIN;
        if (session->write_pos < session->write_buf.size()) events |= POLLOUT;
        fds.push_back({fd, events, 0});
        polled.push_back(session);
      }
    }
    // Cap the sleep so a raced wake (or a subscription armed mid-poll) is
    // picked up promptly even if the wake byte was consumed early.
    int timeout = 100;
    if (sub_timeout_ms >= 0) timeout = std::min(timeout, sub_timeout_ms);
    const int rc = ::poll(fds.data(), fds.size(), timeout);
    if (rc < 0) continue;  // EINTR
    wake_.drain();

    if ((fds[1].revents & POLLIN) != 0) accept_ready();

    for (std::size_t i = 2; i < fds.size(); ++i) {
      const pollfd& entry = fds[i];
      if (entry.revents == 0) continue;
      const SessionPtr& session = polled[i - 2];
      bool alive = true;
      if ((entry.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0) alive = false;
      if (alive && (entry.revents & POLLIN) != 0) {
        alive = service_readable(session);
      }
      if (alive && (entry.revents & POLLOUT) != 0) {
        alive = flush_writable(session);
      }
      if (!alive) close_session(session);
    }
  }
}

void FlowQLServer::accept_ready() {
  for (;;) {
    const int client = ::accept(listen_fd_.get(), nullptr, nullptr);
    if (client < 0) break;
    bool over_cap = false;
    {
      const MutexLock lock(mu_);
      over_cap = sessions_.size() >= options_.max_connections;
      if (over_cap) ++stats_.connections_rejected;
    }
    if (over_cap) {
      net::ScopedFd drop(client);  // close immediately
      continue;
    }
    net::set_nonblocking(client);
    net::set_nodelay(client);
    auto session =
        std::make_shared<Session>(net::ScopedFd(client), options_.max_frame_bytes);
    const MutexLock lock(mu_);
    sessions_[client] = std::move(session);
    ++stats_.connections_accepted;
    stats_.active_connections = sessions_.size();
    if (metric_connections_ != nullptr) metric_connections_->add();
    if (metric_active_conns_ != nullptr) {
      metric_active_conns_->set(static_cast<double>(sessions_.size()));
    }
  }
}

bool FlowQLServer::service_readable(const SessionPtr& session) {
  std::uint8_t buf[64 * 1024];
  std::uint64_t total = 0;
  bool alive = true;
  for (;;) {
    const net::IoResult io = net::read_some(session->fd, buf, sizeof(buf));
    if (io.closed) {
      alive = false;
      break;
    }
    if (io.would_block) break;
    total += io.bytes;
    try {
      session->reassembler.feed(buf, io.bytes);
      for (;;) {
        auto payload = session->reassembler.next();
        if (!payload.has_value()) break;
        handle_payload(session, *payload);
      }
    } catch (const ParseError&) {
      // Outer-framing violation (bad magic / oversized length): the stream
      // is unrecoverable — count and close.
      const MutexLock lock(mu_);
      ++stats_.dropped_frames;
      if (metric_dropped_ != nullptr) metric_dropped_->add();
      alive = false;
      break;
    }
    if (io.bytes < sizeof(buf)) break;  // drained for now
  }
  if (total > 0) {
    const MutexLock lock(mu_);
    stats_.bytes_in += total;
    if (metric_bytes_in_ != nullptr) metric_bytes_in_->add(total);
  }
  return alive;
}

void FlowQLServer::handle_payload(const SessionPtr& session,
                                  const std::vector<std::uint8_t>& payload) {
  Request request;
  try {
    request = decode_request(payload);
  } catch (const ParseError& e) {
    // Malformed inner payload: the framing survived, so the connection is
    // still usable — answer with the wire error and keep it open.
    {
      const MutexLock lock(mu_);
      ++stats_.bad_requests;
      if (metric_bad_requests_ != nullptr) metric_bad_requests_->add();
    }
    send_response(session,
                  Response{ResponseType::kError, 0,
                           ErrorBody{ErrorCode::kBadRequest, e.what()}});
    return;
  }
  {
    const MutexLock lock(mu_);
    ++stats_.requests;
    if (metric_requests_ != nullptr) metric_requests_->add();
  }

  switch (request.type) {
    case RequestType::kQuery:
      handle_query(session, request.request_id,
                   std::move(std::get<QueryBody>(request.body)));
      break;
    case RequestType::kMetrics: {
      metrics::MetricsRegistry* registry = nullptr;
      {
        const MutexLock lock(mu_);
        registry = registry_;
      }
      if (registry == nullptr) {
        send_response(session, Response{ResponseType::kError, request.request_id,
                                        ErrorBody{ErrorCode::kBadRequest,
                                                  "no metrics registry attached"}});
      } else {
        send_response(session,
                      Response{ResponseType::kMetricsText, request.request_id,
                               MetricsTextBody{registry->snapshot().to_string()}});
      }
      break;
    }
    case RequestType::kSubscribe:
      handle_subscribe(session, request.request_id,
                       std::get<SubscribeBody>(request.body));
      break;
    case RequestType::kUnsubscribe: {
      const std::uint64_t id =
          std::get<UnsubscribeBody>(request.body).subscription_id;
      const auto it = session->subs.find(id);
      if (it == session->subs.end()) {
        send_response(session, Response{ResponseType::kError, request.request_id,
                                        ErrorBody{ErrorCode::kBadRequest,
                                                  "unknown subscription"}});
        break;
      }
      it->second->active.store(false, std::memory_order_relaxed);
      session->subs.erase(it);
      {
        const MutexLock lock(mu_);
        --stats_.subscriptions_active;
        if (metric_subscriptions_ != nullptr) {
          metric_subscriptions_->set(
              static_cast<double>(stats_.subscriptions_active));
        }
      }
      // The unsubscribe acknowledgement reuses kSubscribed: "subscription
      // state changed", carrying the now-removed id.
      send_response(session, Response{ResponseType::kSubscribed,
                                      request.request_id, SubscribedBody{id}});
      break;
    }
    case RequestType::kPing:
      send_response(session,
                    Response{ResponseType::kPong, request.request_id, PongBody{}});
      break;
  }
}

void FlowQLServer::handle_query(const SessionPtr& session,
                                std::uint64_t request_id, QueryBody body) {
  const RequestScheduler::Admit verdict = scheduler_.submit(
      body.priority, body.deadline_ms,
      [this, session, request_id, statement = std::move(body.statement)] {
        execute_and_respond(session, request_id, statement);
      },
      [this, session, request_id] {
        send_response(session,
                      Response{ResponseType::kError, request_id,
                               ErrorBody{ErrorCode::kOverload,
                                         "deadline expired in queue"}});
      });
  switch (verdict) {
    case RequestScheduler::Admit::kAdmitted:
      break;
    case RequestScheduler::Admit::kShedQueueFull:
      send_response(session, Response{ResponseType::kError, request_id,
                                      ErrorBody{ErrorCode::kOverload,
                                                "shed: queue full"}});
      break;
    case RequestScheduler::Admit::kShedDeadline:
      send_response(session,
                    Response{ResponseType::kError, request_id,
                             ErrorBody{ErrorCode::kOverload,
                                       "shed: deadline infeasible at current load"}});
      break;
  }
}

void FlowQLServer::handle_subscribe(const SessionPtr& session,
                                    std::uint64_t request_id,
                                    const SubscribeBody& body) {
  if (body.period_ms < options_.min_subscribe_period_ms) {
    send_response(session,
                  Response{ResponseType::kError, request_id,
                           ErrorBody{ErrorCode::kBadRequest,
                                     "subscription period below server minimum"}});
    return;
  }
  auto sub = std::make_shared<Subscription>();
  sub->id = next_subscription_id_++;
  sub->statement = body.statement;
  sub->period_ms = body.period_ms;
  sub->next_due_us = now_us() + std::uint64_t{body.period_ms} * 1000;
  session->subs[sub->id] = sub;
  {
    const MutexLock lock(mu_);
    ++stats_.subscriptions_active;
    if (metric_subscriptions_ != nullptr) {
      metric_subscriptions_->set(
          static_cast<double>(stats_.subscriptions_active));
    }
  }
  send_response(session, Response{ResponseType::kSubscribed, request_id,
                                  SubscribedBody{sub->id}});
}

int FlowQLServer::service_subscriptions() {
  std::vector<SessionPtr> sessions;
  {
    const MutexLock lock(mu_);
    sessions.reserve(sessions_.size());
    for (const auto& [fd, session] : sessions_) sessions.push_back(session);
  }
  const std::uint64_t now = now_us();
  std::uint64_t earliest = 0;
  bool any = false;
  for (const SessionPtr& session : sessions) {
    for (auto& [id, sub] : session->subs) {
      if (!sub->active.load(std::memory_order_relaxed)) continue;
      if (sub->next_due_us <= now) {
        if (!sub->in_flight.load(std::memory_order_relaxed)) {
          sub->in_flight.store(true, std::memory_order_relaxed);
          const RequestScheduler::Admit verdict = scheduler_.submit(
              0,
              [this, session, sub] {
                if (sub->active.load(std::memory_order_relaxed)) {
                  try {
                    const flowdb::Table table =
                        planner_.run(sub->statement, source_);
                    const std::uint32_t seq = sub->seq++;
                    send_response(session,
                                  Response{ResponseType::kEvent, 0,
                                           EventBody{sub->id, seq,
                                                     table.to_string()}});
                    const MutexLock lock(mu_);
                    ++stats_.events_pushed;
                    if (metric_events_ != nullptr) metric_events_->add();
                  } catch (const Error& e) {
                    // A subscription whose statement stopped executing is
                    // dead: report once and cancel (the loop reaps it).
                    sub->active.store(false, std::memory_order_relaxed);
                    send_response(
                        session,
                        Response{ResponseType::kError, 0,
                                 ErrorBody{ErrorCode::kExec,
                                           std::string("subscription ") +
                                               std::to_string(sub->id) + ": " +
                                               e.what()}});
                  }
                }
                sub->in_flight.store(false, std::memory_order_relaxed);
              },
              [sub] { sub->in_flight.store(false, std::memory_order_relaxed); });
          if (verdict != RequestScheduler::Admit::kAdmitted) {
            // Overloaded: skip this tick; the event stream thins under load
            // instead of joining the queue it would only lengthen.
            sub->in_flight.store(false, std::memory_order_relaxed);
          }
        }
        sub->next_due_us = now + std::uint64_t{sub->period_ms} * 1000;
      }
      if (!any || sub->next_due_us < earliest) {
        earliest = sub->next_due_us;
        any = true;
      }
    }
    // Reap subscriptions cancelled by a failed tick.
    for (auto it = session->subs.begin(); it != session->subs.end();) {
      if (!it->second->active.load(std::memory_order_relaxed)) {
        it = session->subs.erase(it);
        const MutexLock lock(mu_);
        --stats_.subscriptions_active;
        if (metric_subscriptions_ != nullptr) {
          metric_subscriptions_->set(
              static_cast<double>(stats_.subscriptions_active));
        }
      } else {
        ++it;
      }
    }
  }
  if (!any) return -1;
  if (earliest <= now) return 0;
  return static_cast<int>((earliest - now) / 1000 + 1);
}

// ---------------------------------------------------------------------------
// Query execution (pool workers)
// ---------------------------------------------------------------------------

void FlowQLServer::execute_and_respond(const SessionPtr& session,
                                       std::uint64_t request_id,
                                       const std::string& statement) {
  std::string text;
  try {
    text = planner_.run(statement, source_).to_string();
  } catch (const ParseError& e) {
    send_response(session, Response{ResponseType::kError, request_id,
                                    ErrorBody{ErrorCode::kParse, e.what()}});
    return;
  } catch (const Error& e) {
    send_response(session, Response{ResponseType::kError, request_id,
                                    ErrorBody{ErrorCode::kExec, e.what()}});
    return;
  }
  // Stream the rendered table as bounded chunks; an empty table is still one
  // (empty, last) chunk so the client always sees a terminator.
  std::uint32_t seq = 0;
  std::size_t pos = 0;
  do {
    const std::size_t len = std::min(options_.chunk_bytes, text.size() - pos);
    ResultChunkBody chunk;
    chunk.seq = seq++;
    chunk.last = pos + len >= text.size();
    chunk.chunk = text.substr(pos, len);
    pos += len;
    send_response(session,
                  Response{ResponseType::kResultChunk, request_id,
                           std::move(chunk)});
  } while (pos < text.size());
}

// ---------------------------------------------------------------------------
// Response path
// ---------------------------------------------------------------------------

void FlowQLServer::send_response(const SessionPtr& session,
                                 const Response& response) {
  const std::vector<std::uint8_t> frame = net::encode_frame(encode(response));
  {
    const MutexLock lock(session->mu);
    if (session->closed) return;
    session->outbox.insert(session->outbox.end(), frame.begin(), frame.end());
  }
  {
    const MutexLock lock(mu_);
    dirty_.insert(session->fd);
  }
  wake_.wake();
}

bool FlowQLServer::drain_outbox(const SessionPtr& session) {
  {
    const MutexLock lock(session->mu);
    if (session->closed) return true;
    if (!session->outbox.empty()) {
      if (session->write_buf.empty()) {
        session->write_buf = std::move(session->outbox);
        session->outbox = {};
        session->write_pos = 0;
      } else {
        session->write_buf.insert(session->write_buf.end(),
                                  session->outbox.begin(),
                                  session->outbox.end());
        session->outbox.clear();
      }
    }
  }
  if (session->write_buf.size() - session->write_pos >
      options_.max_write_buffer) {
    // Slow-client cutoff: the peer stopped reading while responses piled up.
    const MutexLock lock(mu_);
    ++stats_.slow_client_closed;
    if (metric_slow_closed_ != nullptr) metric_slow_closed_->add();
    return false;
  }
  return flush_writable(session);
}

bool FlowQLServer::flush_writable(const SessionPtr& session) {
  std::uint64_t total = 0;
  bool alive = true;
  while (session->write_pos < session->write_buf.size()) {
    const net::IoResult io = net::write_some(
        session->fd, session->write_buf.data() + session->write_pos,
        session->write_buf.size() - session->write_pos);
    if (io.closed) {
      alive = false;
      break;
    }
    total += io.bytes;
    if (io.would_block) break;
    session->write_pos += io.bytes;
  }
  if (session->write_pos == session->write_buf.size()) {
    session->write_buf.clear();
    session->write_pos = 0;
  } else if (session->write_pos >= 4096) {
    session->write_buf.erase(
        session->write_buf.begin(),
        session->write_buf.begin() +
            static_cast<std::ptrdiff_t>(session->write_pos));
    session->write_pos = 0;
  }
  if (total > 0) {
    const MutexLock lock(mu_);
    stats_.bytes_out += total;
    if (metric_bytes_out_ != nullptr) metric_bytes_out_->add(total);
  }
  return alive;
}

void FlowQLServer::close_session(const SessionPtr& session) {
  {
    const MutexLock lock(session->mu);
    if (session->closed) return;
    session->closed = true;
    session->outbox.clear();
  }
  for (auto& [id, sub] : session->subs) {
    sub->active.store(false, std::memory_order_relaxed);
  }
  const std::size_t subs = session->subs.size();
  session->subs.clear();
  session->socket.reset();  // eager close; workers see `closed` and no-op
  const MutexLock lock(mu_);
  sessions_.erase(session->fd);
  dirty_.erase(session->fd);
  stats_.active_connections = sessions_.size();
  stats_.subscriptions_active -= subs;
  if (metric_active_conns_ != nullptr) {
    metric_active_conns_->set(static_cast<double>(sessions_.size()));
  }
  if (metric_subscriptions_ != nullptr) {
    metric_subscriptions_->set(
        static_cast<double>(stats_.subscriptions_active));
  }
}

}  // namespace megads::serve
