#include "serve/scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

namespace megads::serve {

RequestScheduler::RequestScheduler(ThreadPool& pool, Options options)
    : pool_(pool), options_(options) {
  const MutexLock lock(mu_);
  stats_.ewma_service_us = options_.initial_service_us;
}

RequestScheduler::~RequestScheduler() { drain(); }

std::uint64_t RequestScheduler::now_us() const noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

RequestScheduler::Queued RequestScheduler::pop_next() {
  // Strict-weak "less" for the max-heap: lower priority sorts first; within
  // a priority the later arrival (higher seq) sorts first, so the heap's max
  // is the oldest request of the highest priority.
  const auto heap_less = [](const Queued& a, const Queued& b) noexcept {
    if (a.priority != b.priority) return a.priority < b.priority;
    return a.seq > b.seq;
  };
  std::pop_heap(queue_.begin(), queue_.end(), heap_less);
  Queued task = std::move(queue_.back());
  queue_.pop_back();
  return task;
}

RequestScheduler::Admit RequestScheduler::submit(
    std::uint8_t priority, std::uint32_t deadline_ms,
    std::function<void()> run, std::function<void()> expired) {
  const std::uint32_t effective_ms =
      deadline_ms != 0 ? deadline_ms : options_.default_deadline_ms;
  const std::uint64_t enqueued_us = now_us();
  // 0 = no deadline: never expires, never feasibility-shed.
  const std::uint64_t deadline_us =
      effective_ms != 0 ? enqueued_us + std::uint64_t{effective_ms} * 1000 : 0;

  {
    const MutexLock lock(mu_);
    ++stats_.submitted;
    if (metric_submitted_ != nullptr) metric_submitted_->add();
    if (stats_.queue_depth >= options_.max_queue) {
      ++stats_.shed_queue;
      if (metric_shed_queue_ != nullptr) metric_shed_queue_->add();
      return Admit::kShedQueueFull;
    }
    if (deadline_us != 0) {
      const double predicted_wait_us =
          static_cast<double>(stats_.queue_depth) * stats_.ewma_service_us;
      if (predicted_wait_us >
          static_cast<double>(std::uint64_t{effective_ms} * 1000)) {
        ++stats_.shed_deadline;
        if (metric_shed_deadline_ != nullptr) metric_shed_deadline_->add();
        return Admit::kShedDeadline;
      }
    }
    ++stats_.accepted;
    ++stats_.queue_depth;
    if (metric_accepted_ != nullptr) metric_accepted_->add();
    if (metric_queue_depth_ != nullptr) {
      metric_queue_depth_->set(static_cast<double>(stats_.queue_depth));
    }
    Queued entry{priority, next_seq_++, deadline_us, enqueued_us,
                 std::move(run), std::move(expired)};
    queue_.push_back(std::move(entry));
    const auto heap_less = [](const Queued& a, const Queued& b) noexcept {
      if (a.priority != b.priority) return a.priority < b.priority;
      return a.seq > b.seq;
    };
    std::push_heap(queue_.begin(), queue_.end(), heap_less);
  }

  // The pool task is a generic worker: it dequeues the *current* maximum,
  // which need not be the request admitted above — that indirection is what
  // lets a later high-priority request overtake everything already queued.
  pool_.submit([this] {
    Queued task;
    bool inverted = false;
    {
      const MutexLock lock(mu_);
      task = pop_next();
      for (std::size_t p = 0; p < task.priority; ++p) {
        if (running_[p] != 0) {
          inverted = true;
          break;
        }
      }
      ++running_[task.priority];
      if (inverted) {
        ++stats_.priority_inversions;
        if (metric_inversions_ != nullptr) metric_inversions_->add();
      }
    }
    const std::uint64_t started_us = now_us();
    const bool dead = task.deadline_us != 0 && started_us > task.deadline_us;
    if (!dead) {
      task.run();
    } else {
      task.expired();
    }
    const std::uint64_t finished_us = now_us();

    const MutexLock lock(mu_);
    --running_[task.priority];
    --stats_.queue_depth;
    if (metric_queue_depth_ != nullptr) {
      metric_queue_depth_->set(static_cast<double>(stats_.queue_depth));
    }
    if (metric_queue_wait_us_ != nullptr) {
      metric_queue_wait_us_->observe(
          static_cast<double>(started_us - task.enqueued_us));
    }
    if (!dead) {
      ++stats_.executed;
      const double service_us = static_cast<double>(finished_us - started_us);
      stats_.ewma_service_us =
          (1.0 - options_.ewma_alpha) * stats_.ewma_service_us +
          options_.ewma_alpha * service_us;
      if (metric_executed_ != nullptr) metric_executed_->add();
      if (metric_service_us_ != nullptr) metric_service_us_->observe(service_us);
      if (metric_ewma_ != nullptr) metric_ewma_->set(stats_.ewma_service_us);
    } else {
      ++stats_.expired;
      if (metric_expired_ != nullptr) metric_expired_->add();
    }
    if (stats_.queue_depth == 0) drained_.notify_all();
  });
  return Admit::kAdmitted;
}

void RequestScheduler::drain() {
  UniqueLock lock(mu_);
  drained_.wait(lock, [this] {
    mu_.assert_held();
    return stats_.queue_depth == 0;
  });
}

RequestScheduler::Stats RequestScheduler::stats() const {
  const MutexLock lock(mu_);
  return stats_;
}

void RequestScheduler::attach_metrics(metrics::MetricsRegistry& registry) {
  // Resolve outside mu_: registry registration locks kMetricsRegistry (800),
  // legal under 40 but kept disjoint anyway.
  metrics::Counter& submitted = registry.counter("serve.sched.submitted");
  metrics::Counter& accepted = registry.counter("serve.sched.accepted");
  metrics::Counter& shed_queue = registry.counter("serve.sched.shed_queue");
  metrics::Counter& shed_deadline =
      registry.counter("serve.sched.shed_deadline");
  metrics::Counter& executed = registry.counter("serve.sched.executed");
  metrics::Counter& expired = registry.counter("serve.sched.expired");
  metrics::Gauge& queue_depth = registry.gauge("serve.sched.queue_depth");
  metrics::Gauge& ewma = registry.gauge("serve.sched.ewma_service_us");
  metrics::Histogram& service = registry.histogram("serve.sched.service_us");
  metrics::Histogram& wait = registry.histogram("serve.sched.queue_wait_us");
  metrics::Counter& inversions = registry.counter("serve.priority_inversions");

  const MutexLock lock(mu_);
  metric_inversions_ = &inversions;
  metric_submitted_ = &submitted;
  metric_accepted_ = &accepted;
  metric_shed_queue_ = &shed_queue;
  metric_shed_deadline_ = &shed_deadline;
  metric_executed_ = &executed;
  metric_expired_ = &expired;
  metric_queue_depth_ = &queue_depth;
  metric_ewma_ = &ewma;
  metric_service_us_ = &service;
  metric_queue_wait_us_ = &wait;
  // Catch the registry up with everything counted before attachment.
  metric_submitted_->add(stats_.submitted);
  metric_accepted_->add(stats_.accepted);
  metric_shed_queue_->add(stats_.shed_queue);
  metric_shed_deadline_->add(stats_.shed_deadline);
  metric_executed_->add(stats_.executed);
  metric_expired_->add(stats_.expired);
  metric_inversions_->add(stats_.priority_inversions);
  metric_queue_depth_->set(static_cast<double>(stats_.queue_depth));
  metric_ewma_->set(stats_.ewma_service_us);
}

}  // namespace megads::serve
