// Blocking FlowQL client — the test/bench/example-facing counterpart of
// FlowQLServer. One Client is one TCP connection speaking the serve protocol
// synchronously: send a request, read frames until the matching response
// completes. Server-pushed kEvent frames that interleave with a pending
// request are stashed and handed out by wait_event() in arrival order.
//
// Not thread-safe: one Client per thread (the load generator in bench_serve
// drives many connections from one thread with its own non-blocking state
// machine instead — this class is the simple correctness-oriented path).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "net/framing.hpp"
#include "net/socket.hpp"
#include "serve/protocol.hpp"

namespace megads::serve {

class Client {
 public:
  /// Connects immediately; throws NotFoundError when the server is
  /// unreachable.
  Client(const std::string& host, std::uint16_t port);

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  struct Result {
    bool ok = false;
    ErrorCode code = ErrorCode::kBadRequest;  ///< valid when !ok
    std::string message;                      ///< error message when !ok
    std::string text;  ///< rendered table / metrics dump when ok
  };

  struct Event {
    std::uint64_t subscription_id = 0;
    std::uint32_t seq = 0;
    std::string text;
  };

  /// Execute a FlowQL statement; reassembles the chunk stream into `text`.
  /// deadline_ms = 0 uses the server default. `priority` orders dequeue on
  /// the server (higher first; FIFO within a priority).
  [[nodiscard]] Result query(const std::string& statement,
                             std::uint32_t deadline_ms = 0,
                             std::uint8_t priority = 0);

  /// Fetch the server's metrics snapshot dump.
  [[nodiscard]] Result metrics();

  /// Register a periodic subscription; returns its id. Throws Error when the
  /// server rejects it.
  [[nodiscard]] std::uint64_t subscribe(const std::string& statement,
                                        std::uint32_t period_ms);
  /// Block until the next server-pushed event arrives.
  [[nodiscard]] Event wait_event();
  void unsubscribe(std::uint64_t subscription_id);

  /// Round-trip liveness check.
  [[nodiscard]] bool ping();

 private:
  void send_request(const Request& request);
  /// Block until a full response frame for `request_id` arrives; events seen
  /// on the way are stashed for wait_event().
  [[nodiscard]] Response read_response(std::uint64_t request_id);
  [[nodiscard]] std::optional<Response> next_frame();

  net::ScopedFd fd_;
  net::FrameReassembler reassembler_;
  std::uint64_t next_id_ = 1;
  std::deque<Event> pending_events_;
};

}  // namespace megads::serve
