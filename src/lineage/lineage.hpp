// Data lineage (Section III.C): "we need to track data as it moves through
// and is transformed by the system ... Data lineage can, e.g., be used to
// identify faulty sensors or retract erroneous rules."
//
// Recorder keeps a DAG of entities (sensors, summaries, partitions, exports,
// query results) connected by transforms (ingest, seal, merge, export,
// absorb, query). Granularity is schema/batch level — one edge per
// (source, summary-epoch) — which is the paper's "schema-level lineage":
// cheap enough to stay on at the envisioned data rates, and sufficient for
// the two motivating queries:
//
//   descendants(sensor)  -> everything a faulty sensor contaminated
//                           (summaries, exports, query results downstream);
//   ancestors(result)    -> every sensor/summary a result depends on.
//
// Instance-level lineage (per observation) is intentionally out of scope;
// the paper itself flags its overhead as prohibitive.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace megads::lineage {

enum class EntityKind {
  kSensor,       ///< a data source
  kSummary,      ///< a live (epoch-in-progress) summary in a data store
  kPartition,    ///< a sealed summary epoch
  kExport,       ///< an encoded summary shipped over the network
  kQueryResult,  ///< an answer handed to an application
};

enum class TransformKind {
  kIngest,   ///< sensor -> live summary
  kSeal,     ///< live summary -> partition
  kMerge,    ///< partitions -> coarser partition (hierarchical storage)
  kExport,   ///< partitions -> wire-format export
  kAbsorb,   ///< export -> a remote store's live summary / index
  kQuery,    ///< partitions + live -> query result
};

[[nodiscard]] const char* to_string(EntityKind kind) noexcept;
[[nodiscard]] const char* to_string(TransformKind kind) noexcept;

/// Identifier of a lineage entity. 0 is the invalid/null entity.
using EntityId = std::uint64_t;
inline constexpr EntityId kNoEntity = 0;

struct Entity {
  EntityId id = kNoEntity;
  EntityKind kind = EntityKind::kSensor;
  std::string label;
  SimTime created = 0;
};

struct Transform {
  TransformKind kind = TransformKind::kIngest;
  std::vector<EntityId> inputs;
  EntityId output = kNoEntity;
  SimTime time = 0;
};

class Recorder {
 public:
  /// Register a new entity and return its id.
  EntityId add_entity(EntityKind kind, std::string label, SimTime now);

  /// Record a transformation producing `output` from `inputs`. Unknown ids
  /// throw NotFoundError; self-loops are rejected.
  void add_transform(TransformKind kind, std::span<const EntityId> inputs,
                     EntityId output, SimTime now);

  [[nodiscard]] const Entity& entity(EntityId id) const;
  [[nodiscard]] std::size_t entity_count() const noexcept { return entities_.size(); }
  [[nodiscard]] std::size_t transform_count() const noexcept {
    return transforms_.size();
  }

  /// All entities `id` transitively depends on (provenance), excluding `id`.
  [[nodiscard]] std::vector<EntityId> ancestors(EntityId id) const;
  /// All entities transitively derived from `id` (taint), excluding `id`.
  [[nodiscard]] std::vector<EntityId> descendants(EntityId id) const;
  /// Ancestors filtered to one kind — e.g. the sensors behind a result.
  [[nodiscard]] std::vector<EntityId> sources_of(EntityId id,
                                                 EntityKind kind) const;
  /// Transforms whose output is `id` (usually one).
  [[nodiscard]] std::vector<Transform> producing(EntityId id) const;

  /// Human-readable provenance trace of an entity (one line per hop).
  [[nodiscard]] std::string explain(EntityId id) const;

 private:
  void check(EntityId id) const;
  [[nodiscard]] std::vector<EntityId> closure(
      EntityId start, const std::unordered_map<EntityId, std::vector<EntityId>>&
                          edges) const;

  std::unordered_map<EntityId, Entity> entities_;
  std::vector<Transform> transforms_;
  std::unordered_map<EntityId, std::vector<EntityId>> parents_;   // output -> inputs
  std::unordered_map<EntityId, std::vector<EntityId>> children_;  // input -> outputs
  EntityId next_ = 1;
};

}  // namespace megads::lineage
