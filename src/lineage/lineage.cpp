#include "lineage/lineage.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/error.hpp"

namespace megads::lineage {

const char* to_string(EntityKind kind) noexcept {
  switch (kind) {
    case EntityKind::kSensor: return "sensor";
    case EntityKind::kSummary: return "summary";
    case EntityKind::kPartition: return "partition";
    case EntityKind::kExport: return "export";
    case EntityKind::kQueryResult: return "query-result";
  }
  return "?";
}

const char* to_string(TransformKind kind) noexcept {
  switch (kind) {
    case TransformKind::kIngest: return "ingest";
    case TransformKind::kSeal: return "seal";
    case TransformKind::kMerge: return "merge";
    case TransformKind::kExport: return "export";
    case TransformKind::kAbsorb: return "absorb";
    case TransformKind::kQuery: return "query";
  }
  return "?";
}

EntityId Recorder::add_entity(EntityKind kind, std::string label, SimTime now) {
  const EntityId id = next_++;
  entities_.emplace(id, Entity{id, kind, std::move(label), now});
  return id;
}

void Recorder::check(EntityId id) const {
  if (!entities_.contains(id)) {
    throw NotFoundError("lineage: unknown entity " + std::to_string(id));
  }
}

void Recorder::add_transform(TransformKind kind, std::span<const EntityId> inputs,
                             EntityId output, SimTime now) {
  check(output);
  for (const EntityId input : inputs) {
    check(input);
    expects(input != output, "lineage: self-loop transform");
  }
  Transform transform;
  transform.kind = kind;
  transform.inputs.assign(inputs.begin(), inputs.end());
  transform.output = output;
  transform.time = now;
  for (const EntityId input : inputs) {
    parents_[output].push_back(input);
    children_[input].push_back(output);
  }
  transforms_.push_back(std::move(transform));
}

const Entity& Recorder::entity(EntityId id) const {
  check(id);
  return entities_.at(id);
}

std::vector<EntityId> Recorder::closure(
    EntityId start,
    const std::unordered_map<EntityId, std::vector<EntityId>>& edges) const {
  std::unordered_set<EntityId> seen{start};
  std::vector<EntityId> frontier{start};
  std::vector<EntityId> result;
  while (!frontier.empty()) {
    const EntityId current = frontier.back();
    frontier.pop_back();
    const auto it = edges.find(current);
    if (it == edges.end()) continue;
    for (const EntityId next : it->second) {
      if (seen.insert(next).second) {
        result.push_back(next);
        frontier.push_back(next);
      }
    }
  }
  std::sort(result.begin(), result.end());
  return result;
}

std::vector<EntityId> Recorder::ancestors(EntityId id) const {
  check(id);
  return closure(id, parents_);
}

std::vector<EntityId> Recorder::descendants(EntityId id) const {
  check(id);
  return closure(id, children_);
}

std::vector<EntityId> Recorder::sources_of(EntityId id, EntityKind kind) const {
  std::vector<EntityId> result;
  for (const EntityId ancestor : ancestors(id)) {
    if (entities_.at(ancestor).kind == kind) result.push_back(ancestor);
  }
  return result;
}

std::vector<Transform> Recorder::producing(EntityId id) const {
  check(id);
  std::vector<Transform> result;
  for (const Transform& transform : transforms_) {
    if (transform.output == id) result.push_back(transform);
  }
  return result;
}

std::string Recorder::explain(EntityId id) const {
  check(id);
  std::string out;
  std::unordered_set<EntityId> visited;
  std::vector<EntityId> stack{id};
  while (!stack.empty()) {
    const EntityId current = stack.back();
    stack.pop_back();
    if (!visited.insert(current).second) continue;
    for (const Transform& transform : producing(current)) {
      const Entity& target = entities_.at(current);
      out += std::string(to_string(target.kind)) + " '" + target.label +
             "' <- " + to_string(transform.kind) + " of";
      for (const EntityId input : transform.inputs) {
        const Entity& source = entities_.at(input);
        out += std::string(" [") + to_string(source.kind) + " '" + source.label +
               "']";
        stack.push_back(input);
      }
      out += " @" + std::to_string(transform.time) + "\n";
    }
  }
  return out;
}

}  // namespace megads::lineage
