// Flowtree — the paper's novel computing primitive (Section VI).
//
// A self-adjusting tree over generalized flows: every observed flow and each
// generalization of it is a node; a node's parent is its most specific
// generalized flow (unique because generalization follows the canonical
// order of flow::FlowKey::parent). Each node carries its *own* popularity
// score; the popularity of a node in the paper's sense — own score plus the
// scores of all descendants — is the node's subtree score.
//
// The full operator set of Table II is implemented as typed methods
// (merge / compress / diff / query / drilldown / top_k / above / hhh) and is
// also reachable through the generic primitives::Aggregator interface, so a
// data store can treat Flowtree like any other primitive.
//
// Self-adaptation (design property (d)): after ingest the tree compresses
// itself back to `node_budget` whenever it exceeds node_budget * slack.
// Compression repeatedly evicts the leaf with the smallest subtree score and
// folds its mass into its parent — summaries get coarser exactly where the
// data is thin, and total mass is always preserved.
//
// Copying is O(1): the node pool lives behind a shared, copy-on-write state
// block, so materialized views and caches hand out snapshots without deep-
// copying 4k-node trees. The first mutation of a copy detaches its state.
// A Flowtree is still a plain value for threading purposes — two threads may
// read trees that *share* state, but a single tree object needs external
// synchronization like any container.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "primitives/aggregator.hpp"

namespace megads::flowtree {

struct FlowtreeConfig {
  flow::GeneralizationPolicy policy{};
  /// Keys are projected onto this feature set on ingest.
  flow::FeatureSet features = flow::FeatureSet::kFiveTuple;
  /// Self-adaptation target: compress back to this many nodes...
  std::size_t node_budget = 4096;
  /// ...whenever the node count exceeds node_budget * compress_slack.
  double compress_slack = 1.25;

  friend bool operator==(const FlowtreeConfig&, const FlowtreeConfig&) = default;
};

/// One row of a Flowtree report: a (generalized) flow and its score.
using primitives::KeyScore;

class Flowtree;

/// An aggregator whose contents can be folded into a pooled Flowtree even
/// though it is not a Flowtree itself (e.g. a spilled flat block served from
/// mmap). Flowtree::mergeable_with / merge_from accept any implementor whose
/// policy and features match, so DataStore promotion and snapshot folds work
/// across representations without materializing the operand first.
class FlowtreeFoldable {
 public:
  virtual ~FlowtreeFoldable() = default;

  /// The policy/features this summary was built under (budget/slack are
  /// advisory — merge compatibility only inspects policy and features).
  [[nodiscard]] virtual FlowtreeConfig flowtree_config() const = 0;

  /// Table II Merge of this summary's mass into `accumulator`.
  virtual void fold_into(Flowtree& accumulator) const = 0;
};

class Flowtree final : public primitives::Aggregator {
 public:
  explicit Flowtree(FlowtreeConfig config = {});

  /// O(1): shares the node pool and marks the state ever-shared, so neither
  /// handle will mutate it in place again (see detach()).
  Flowtree(const Flowtree& other);
  Flowtree& operator=(const Flowtree& other);
  Flowtree(Flowtree&&) noexcept = default;
  Flowtree& operator=(Flowtree&&) noexcept = default;
  ~Flowtree() override = default;

  // --- primitives::Aggregator surface ---
  [[nodiscard]] std::string kind() const override { return "flowtree"; }
  void insert(const primitives::StreamItem& item) override;
  /// Batched ingest: accumulates the batch per projected key, so the tree
  /// walk runs once per distinct key and self-compression once per batch.
  void insert_batch(std::span<const primitives::StreamItem> items) override;
  [[nodiscard]] primitives::QueryResult execute(
      const primitives::Query& query) const override;
  /// True for another Flowtree — or any FlowtreeFoldable — with the same
  /// generalization policy and feature set.
  [[nodiscard]] bool mergeable_with(
      const primitives::Aggregator& other) const override;
  void merge_from(const primitives::Aggregator& other) override;
  void compress(std::size_t target_size) override;
  void adapt(const primitives::AdaptSignal& signal) override;
  [[nodiscard]] std::size_t size() const override { return state_->node_count; }
  [[nodiscard]] std::size_t memory_bytes() const override;
  [[nodiscard]] std::size_t wire_bytes() const override;
  [[nodiscard]] std::unique_ptr<primitives::Aggregator> clone() const override;

  // --- Table II operators, typed ---

  /// Add a flow observation with the given weight (packet/byte/flow count).
  void add(const flow::FlowKey& key, double weight);

  /// Merge: fold `other` into this tree (node-wise own-score addition).
  /// The "shared time or location" precondition of Table II is enforced by
  /// the layer that owns the summaries' metadata (FlowDB / data store).
  /// Fast path: merging into a pristine (freshly constructed) tree adopts
  /// `other`'s node pool by sharing it — O(1) instead of O(nodes) — which is
  /// what makes accumulator-style fold loops cheap for their first operand.
  void merge(const Flowtree& other);

  /// Accumulator-oriented spelling of merge, used by fold loops:
  /// `tree.merge_into(acc)` is exactly `acc.merge(tree)` (including the
  /// pristine-accumulator adopt fast path above).
  void merge_into(Flowtree& accumulator) const { accumulator.merge(*this); }

  /// Diff: subtract `other`'s scores from this tree (scores may go negative;
  /// Table II: "Subtract the popularity scores from flows appearing in one
  /// tree from the other").
  void diff(const Flowtree& other);

  /// Query: the popularity score of a single (possibly generalized) flow —
  /// own + descendants. Returns 0 for keys not in the tree.
  [[nodiscard]] double query(const flow::FlowKey& key) const;

  /// Lattice query: the mass of all nodes `key` generalizes, whether or not
  /// `key` lies on the canonical chain (e.g. "dst_port = 53" alone, which no
  /// chain node represents). O(nodes) scan — the price of design property
  /// (a)'s *arbitrary* queries; on-chain keys should use query(). After
  /// compression the answer is a lower bound (folded mass may have lost the
  /// queried feature). Keys constraining a feature no live node carries
  /// answer 0 in O(1) via a per-feature presence mask.
  [[nodiscard]] double query_lattice(const flow::FlowKey& key) const;

  /// Drilldown: children of `key` with their popularity scores, descending.
  [[nodiscard]] std::vector<KeyScore> drilldown(const flow::FlowKey& key) const;

  /// Top-k: the k flows with the highest own score, descending.
  [[nodiscard]] std::vector<KeyScore> top_k(std::size_t k) const;

  /// Above-x: all flows with own score >= x, descending.
  [[nodiscard]] std::vector<KeyScore> above(double threshold) const;

  /// HHH: hierarchical heavy hitters with threshold phi (fraction of total
  /// mass), computed bottom-up with discounting.
  [[nodiscard]] std::vector<KeyScore> hhh(double phi) const;

  // --- privacy-preserving coarsening (Section III.C: "privacy can be
  // enforced by limiting what summaries can be shared ... and at what
  // granularity"). Both operators preserve total mass.

  /// k-anonymity-style suppression: repeatedly fold every leaf whose subtree
  /// score is below `min_score` into its parent, so no shared node reveals
  /// activity smaller than min_score (the root is exempt).
  void suppress_below(double min_score);

  /// Granularity cap: fold every node deeper than `max_depth` into its
  /// ancestor at that depth (e.g. depth 7 = "no host addresses or ports in
  /// exports" under the default policy).
  void generalize_deeper_than(int max_depth);

  // --- introspection ---
  [[nodiscard]] const FlowtreeConfig& config() const noexcept { return config_; }
  /// Total mass currently in the tree (= sum of own scores).
  [[nodiscard]] double total_weight() const noexcept {
    return state_->total_weight;
  }
  /// True when compression has folded mass upward (answers are estimates).
  [[nodiscard]] bool lossy() const noexcept { return state_->lossy; }
  /// Number of compress() runs (self-triggered or external) so far.
  [[nodiscard]] std::uint64_t compress_count() const noexcept {
    return state_->compress_count;
  }
  /// All live nodes as (key, own score) rows (order unspecified).
  [[nodiscard]] std::vector<KeyScore> entries() const;
  /// Depth of the deepest live node.
  [[nodiscard]] int max_depth() const;

  /// True when this tree and `other` currently share one copy-on-write node
  /// pool (introspection for cache accounting and tests).
  [[nodiscard]] bool shares_state_with(const Flowtree& other) const noexcept {
    return state_ == other.state_;
  }

  /// Structural self-check (test/debug aid): verifies parent/child link
  /// symmetry, index consistency, canonical parenthood, depth bookkeeping,
  /// node-pool accounting (live + free == allocated), score finiteness,
  /// the per-feature presence mask, and that total_weight() equals the sum
  /// of own scores. Throws Error with a description on the first violation.
  void check_invariants() const override;

  // --- serialization (network export / FlowDB storage) ---
  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  static Flowtree decode(const std::vector<std::uint8_t>& bytes,
                         FlowtreeConfig config = {});

  /// Bytes per serialized node (key wire size + score).
  static constexpr std::size_t kBytesPerNode = flow::FlowKey::kWireSize + 8;
  static constexpr std::size_t kHeaderBytes = 16;

 private:
  /// The flat-block converters (flatblock.{hpp,cpp}) walk the node pool and
  /// rebuild through find_or_create with the decoder's raised-budget
  /// discipline — same trust level as the FTRE codec in flowtree.cpp.
  friend class FlatCodec;

  struct Node {
    flow::FlowKey key;
    double own = 0.0;
    std::int32_t parent = -1;
    std::int32_t first_child = -1;
    std::int32_t next_sibling = -1;
    std::int32_t prev_sibling = -1;
    std::int32_t depth = 0;
    bool alive = false;
  };

  static constexpr std::int32_t kNone = -1;

  /// Indices into State::feature_presence.
  enum Feature : std::size_t {
    kFeatProto = 0,
    kFeatSrcIp = 1,
    kFeatDstIp = 2,
    kFeatSrcPort = 3,
    kFeatDstPort = 4,
    kFeatureCount = 5,
  };

  /// Everything a copy shares until its first mutation.
  struct State {
    std::vector<Node> nodes;
    std::vector<std::int32_t> free_list;
    std::unordered_map<flow::FlowKey, std::int32_t> index;
    std::int32_t root = kNone;
    std::size_t node_count = 0;
    double total_weight = 0.0;
    bool lossy = false;
    std::uint64_t compress_count = 0;
    /// Live nodes carrying each feature — query_lattice's O(1) early exit.
    std::array<std::int64_t, kFeatureCount> feature_presence{};
    /// Sticky: set the moment a second handle shares this state (copy ctor,
    /// assignment, or merge's adopt fast path). detach() never mutates an
    /// ever-shared state in place, even after the other handles die —
    /// use_count() is a relaxed load, so "the count dropped back to 1" does
    /// not happen-after the dying copy's reads of the pool. A fresh clone
    /// starts unshared again.
    std::atomic<bool> ever_shared{false};

    State() = default;
    State(const State& other)
        : nodes(other.nodes),
          free_list(other.free_list),
          index(other.index),
          root(other.root),
          node_count(other.node_count),
          total_weight(other.total_weight),
          lossy(other.lossy),
          compress_count(other.compress_count),
          feature_presence(other.feature_presence) {}
    State& operator=(const State&) = delete;
  };

  /// Make the state exclusively owned (deep copy when shared) and return it.
  /// Every public mutator goes through here before touching the pool.
  State& detach();
  /// True for a freshly constructed tree (the merge() adopt precondition).
  [[nodiscard]] bool pristine() const noexcept;
  static void note_key_presence(State& s, const flow::FlowKey& key,
                                std::int64_t delta) noexcept;

  [[nodiscard]] std::int32_t find(const flow::FlowKey& key) const;
  std::int32_t find_or_create(const flow::FlowKey& key);
  std::int32_t allocate(const flow::FlowKey& key, std::int32_t parent);
  void link_child(std::int32_t parent, std::int32_t child);
  void unlink_child(std::int32_t node);
  void release(std::int32_t node);

  /// Subtree scores for all live nodes (index-aligned with the node pool).
  [[nodiscard]] std::vector<double> subtree_scores() const;
  /// Live node ids ordered by depth, deepest first.
  [[nodiscard]] std::vector<std::int32_t> nodes_by_depth_desc() const;
  void maybe_self_compress();
  /// Rebuild the node pool at minimal capacity (after heavy eviction).
  void rebuild_compact();

  FlowtreeConfig config_;
  std::shared_ptr<State> state_;
};

}  // namespace megads::flowtree
