#include "flowtree/flowtree.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/error.hpp"

namespace megads::flowtree {

Flowtree::Flowtree(FlowtreeConfig config)
    : config_(config), state_(std::make_shared<State>()) {
  expects(config_.node_budget >= 2, "Flowtree: node_budget must be >= 2");
  expects(config_.compress_slack >= 1.0, "Flowtree: compress_slack must be >= 1");
  state_->root = allocate(flow::FlowKey{}, kNone);  // wildcard root always exists
}

// --- copy-on-write state ----------------------------------------------------

Flowtree::State& Flowtree::detach() {
  // A state that was ever shared is never mutated in place, even after every
  // other handle has died: use_count() is a relaxed load, so observing the
  // count back at 1 does not happen-after a dying copy's reads of the pool —
  // a concurrent cache handout that deep-copied and then released could
  // still be mid-read when an in-place write lands. Cloning is always safe:
  // surviving handles only read (their own mutators clone too), and the
  // fresh clone starts unshared, so never-copied trees keep the in-place
  // fast path.
  if (state_->ever_shared.load(std::memory_order_acquire) ||
      state_.use_count() > 1) {
    state_ = std::make_shared<State>(*state_);
  }
  return *state_;
}

Flowtree::Flowtree(const Flowtree& other)
    : primitives::Aggregator(other),
      config_(other.config_),
      state_(other.state_) {
  state_->ever_shared.store(true, std::memory_order_release);
}

Flowtree& Flowtree::operator=(const Flowtree& other) {
  if (this != &other) {
    primitives::Aggregator::operator=(other);
    config_ = other.config_;
    state_ = other.state_;
    state_->ever_shared.store(true, std::memory_order_release);
  }
  return *this;
}

bool Flowtree::pristine() const noexcept {
  const State& s = *state_;
  return s.nodes.size() == 1 && s.free_list.empty() &&
         s.nodes[s.root].own == 0.0 && s.total_weight == 0.0 && !s.lossy &&
         s.compress_count == 0;
}

void Flowtree::note_key_presence(State& s, const flow::FlowKey& key,
                                 std::int64_t delta) noexcept {
  if (key.proto()) s.feature_presence[kFeatProto] += delta;
  if (key.src().length() > 0) s.feature_presence[kFeatSrcIp] += delta;
  if (key.dst().length() > 0) s.feature_presence[kFeatDstIp] += delta;
  if (key.src_port()) s.feature_presence[kFeatSrcPort] += delta;
  if (key.dst_port()) s.feature_presence[kFeatDstPort] += delta;
}

// --- node pool -------------------------------------------------------------
// The pool helpers assume the caller already holds an exclusively owned
// state (every public mutator detaches first).

std::int32_t Flowtree::allocate(const flow::FlowKey& key, std::int32_t parent) {
  State& s = *state_;
  std::int32_t id;
  if (!s.free_list.empty()) {
    id = s.free_list.back();
    s.free_list.pop_back();
    s.nodes[id] = Node{};
  } else {
    id = static_cast<std::int32_t>(s.nodes.size());
    s.nodes.emplace_back();
  }
  Node& node = s.nodes[id];
  node.key = key;
  node.parent = parent;
  node.depth = parent == kNone ? 0 : s.nodes[parent].depth + 1;
  node.alive = true;
  s.index.emplace(key, id);
  ++s.node_count;
  note_key_presence(s, key, +1);
  if (parent != kNone) link_child(parent, id);
  return id;
}

void Flowtree::link_child(std::int32_t parent, std::int32_t child) {
  State& s = *state_;
  Node& p = s.nodes[parent];
  Node& c = s.nodes[child];
  c.next_sibling = p.first_child;
  c.prev_sibling = kNone;
  if (p.first_child != kNone) s.nodes[p.first_child].prev_sibling = child;
  p.first_child = child;
}

void Flowtree::unlink_child(std::int32_t node) {
  State& s = *state_;
  Node& n = s.nodes[node];
  if (n.prev_sibling != kNone) {
    s.nodes[n.prev_sibling].next_sibling = n.next_sibling;
  } else if (n.parent != kNone) {
    s.nodes[n.parent].first_child = n.next_sibling;
  }
  if (n.next_sibling != kNone) s.nodes[n.next_sibling].prev_sibling = n.prev_sibling;
  n.prev_sibling = n.next_sibling = kNone;
}

void Flowtree::release(std::int32_t node) {
  State& s = *state_;
  note_key_presence(s, s.nodes[node].key, -1);
  s.index.erase(s.nodes[node].key);
  s.nodes[node].alive = false;
  s.free_list.push_back(node);
  --s.node_count;
}

std::int32_t Flowtree::find(const flow::FlowKey& key) const {
  const auto it = state_->index.find(key);
  return it == state_->index.end() ? kNone : it->second;
}

std::int32_t Flowtree::find_or_create(const flow::FlowKey& key) {
  const std::int32_t existing = find(key);
  if (existing != kNone) return existing;

  // Walk up the canonical chain until a live ancestor is found, then
  // materialize the missing segment top-down. Depth is bounded by the
  // generalization policy (<= 11 for the default /8 steps).
  std::vector<flow::FlowKey> missing;
  missing.push_back(key);
  std::int32_t anchor = kNone;
  flow::FlowKey cursor = key;
  while (true) {
    const auto up = cursor.parent(config_.policy);
    expects(up.has_value(), "Flowtree: root must always be present");
    const std::int32_t found = find(*up);
    if (found != kNone) {
      anchor = found;
      break;
    }
    missing.push_back(*up);
    cursor = *up;
  }
  for (auto it = missing.rbegin(); it != missing.rend(); ++it) {
    anchor = allocate(*it, anchor);
  }
  return anchor;
}

// --- ingest ----------------------------------------------------------------

void Flowtree::add(const flow::FlowKey& key, double weight) {
  State& s = detach();
  const flow::FlowKey projected = key.project(config_.features);
  s.nodes[find_or_create(projected)].own += weight;
  s.total_weight += weight;
  maybe_self_compress();
}

void Flowtree::insert(const primitives::StreamItem& item) {
  note_ingest(item);
  add(item.key, item.value);
}

void Flowtree::insert_batch(std::span<const primitives::StreamItem> items) {
  if (items.empty()) return;
  note_ingest_batch(items);
  State& s = detach();
  // Accumulate the batch per projected key: the canonical-chain walk in
  // find_or_create and the self-compression check run once per *distinct*
  // key instead of once per item. Scores add commutatively, so the final
  // tree matches the per-item path exactly whenever no compression fires
  // mid-stream; under budget pressure only the compression timing differs.
  std::unordered_map<flow::FlowKey, double> batch;
  batch.reserve(items.size());
  for (const auto& item : items) {
    batch[item.key.project(config_.features)] += item.value;
  }
  // Bound transient growth on pathological batches (every key distinct):
  // compress mid-batch once the tree overshoots several budgets' worth.
  const auto overshoot = std::max<std::size_t>(
      4 * config_.node_budget,
      static_cast<std::size_t>(std::ceil(static_cast<double>(config_.node_budget) *
                                         config_.compress_slack)));
  for (const auto& [key, weight] : batch) {
    s.nodes[find_or_create(key)].own += weight;
    s.total_weight += weight;
    if (s.node_count > overshoot) compress(config_.node_budget);
  }
  maybe_self_compress();
}

void Flowtree::maybe_self_compress() {
  const auto high_water = static_cast<std::size_t>(
      std::ceil(static_cast<double>(config_.node_budget) * config_.compress_slack));
  if (state_->node_count > high_water) compress(config_.node_budget);
}

// --- scores ----------------------------------------------------------------

std::vector<std::int32_t> Flowtree::nodes_by_depth_desc() const {
  const State& s = *state_;
  std::vector<std::int32_t> order;
  order.reserve(s.node_count);
  for (std::int32_t id = 0; id < static_cast<std::int32_t>(s.nodes.size()); ++id) {
    if (s.nodes[id].alive) order.push_back(id);
  }
  std::sort(order.begin(), order.end(), [&s](std::int32_t a, std::int32_t b) {
    return s.nodes[a].depth > s.nodes[b].depth;
  });
  return order;
}

std::vector<double> Flowtree::subtree_scores() const {
  const State& s = *state_;
  std::vector<double> scores(s.nodes.size(), 0.0);
  for (const std::int32_t id : nodes_by_depth_desc()) {
    scores[id] += s.nodes[id].own;
    if (s.nodes[id].parent != kNone) scores[s.nodes[id].parent] += scores[id];
  }
  return scores;
}

double Flowtree::query(const flow::FlowKey& key) const {
  const State& s = *state_;
  const std::int32_t id = find(key);
  if (id == kNone) return 0.0;
  // Sum own scores over the node's subtree (iterative DFS).
  double total = 0.0;
  std::vector<std::int32_t> stack{id};
  while (!stack.empty()) {
    const std::int32_t cur = stack.back();
    stack.pop_back();
    total += s.nodes[cur].own;
    for (std::int32_t c = s.nodes[cur].first_child; c != kNone;
         c = s.nodes[c].next_sibling) {
      stack.push_back(c);
    }
  }
  return total;
}

double Flowtree::query_lattice(const flow::FlowKey& key) const {
  const State& s = *state_;
  // Absent-feature early exit: a key constraining a feature no live node
  // carries cannot generalize any node — answer 0 without the O(nodes) scan.
  if ((key.proto() && s.feature_presence[kFeatProto] == 0) ||
      (key.src().length() > 0 && s.feature_presence[kFeatSrcIp] == 0) ||
      (key.dst().length() > 0 && s.feature_presence[kFeatDstIp] == 0) ||
      (key.src_port() && s.feature_presence[kFeatSrcPort] == 0) ||
      (key.dst_port() && s.feature_presence[kFeatDstPort] == 0)) {
    return 0.0;
  }
  // Fast path: on-chain keys have a node whose subtree is exactly the answer.
  const std::int32_t id = find(key);
  if (id != kNone) return query(key);
  double total = 0.0;
  for (const Node& node : s.nodes) {
    if (node.alive && node.own != 0.0 && key.generalizes(node.key)) {
      total += node.own;
    }
  }
  return total;
}

std::vector<KeyScore> Flowtree::drilldown(const flow::FlowKey& key) const {
  const State& s = *state_;
  const std::int32_t id = find(key);
  if (id == kNone) return {};
  const std::vector<double> scores = subtree_scores();
  std::vector<KeyScore> rows;
  for (std::int32_t c = s.nodes[id].first_child; c != kNone;
       c = s.nodes[c].next_sibling) {
    rows.push_back({s.nodes[c].key, scores[c]});
  }
  std::sort(rows.begin(), rows.end(), primitives::score_before);
  return rows;
}

std::vector<KeyScore> Flowtree::top_k(std::size_t k) const {
  const State& s = *state_;
  std::vector<KeyScore> rows;
  rows.reserve(s.node_count);
  for (const Node& node : s.nodes) {
    if (node.alive && node.own != 0.0) rows.push_back({node.key, node.own});
  }
  const std::size_t take = std::min(k, rows.size());
  std::partial_sort(rows.begin(), rows.begin() + static_cast<long>(take),
                    rows.end(), primitives::score_before);
  rows.resize(take);
  return rows;
}

std::vector<KeyScore> Flowtree::above(double threshold) const {
  std::vector<KeyScore> rows;
  for (const Node& node : state_->nodes) {
    if (node.alive && node.own >= threshold) rows.push_back({node.key, node.own});
  }
  std::sort(rows.begin(), rows.end(), primitives::score_before);
  return rows;
}

std::vector<KeyScore> Flowtree::hhh(double phi) const {
  expects(phi > 0.0 && phi <= 1.0, "Flowtree::hhh: phi must be in (0, 1]");
  const State& s = *state_;
  if (s.total_weight <= 0.0) return {};
  const double threshold = phi * s.total_weight;

  // Bottom-up with discounting: a node reports when its subtree mass minus
  // already-reported descendant HHH mass clears the threshold.
  std::vector<double> adjusted(s.nodes.size(), 0.0);
  std::vector<KeyScore> hhh_set;
  for (const std::int32_t id : nodes_by_depth_desc()) {
    adjusted[id] += s.nodes[id].own;
    if (adjusted[id] >= threshold) {
      hhh_set.push_back({s.nodes[id].key, adjusted[id]});
    } else if (s.nodes[id].parent != kNone) {
      adjusted[s.nodes[id].parent] += adjusted[id];
    }
  }
  std::sort(hhh_set.begin(), hhh_set.end(), primitives::score_before);
  return hhh_set;
}

std::vector<KeyScore> Flowtree::entries() const {
  const State& s = *state_;
  std::vector<KeyScore> rows;
  rows.reserve(s.node_count);
  for (const Node& node : s.nodes) {
    if (node.alive) rows.push_back({node.key, node.own});
  }
  return rows;
}

int Flowtree::max_depth() const {
  int depth = 0;
  for (const Node& node : state_->nodes) {
    if (node.alive) depth = std::max(depth, static_cast<int>(node.depth));
  }
  return depth;
}

// --- combination -----------------------------------------------------------

void Flowtree::merge(const Flowtree& other) {
  expects(other.config_.policy == config_.policy &&
              other.config_.features == config_.features,
          "Flowtree::merge: incompatible generalization policy or features");
  if (this != &other && pristine()) {
    // Adopt fast path: an empty accumulator takes the whole summary by
    // sharing its node pool (O(1)); the next mutation of either copy
    // detaches. This makes the first operand of every fold loop free.
    state_ = other.state_;
    state_->ever_shared.store(true, std::memory_order_release);
    maybe_self_compress();  // the adopter's budget may be tighter
    return;
  }
  State& s = detach();
  // Materialize parents before children so chains splice cheaply.
  std::vector<std::int32_t> order = other.nodes_by_depth_desc();
  std::reverse(order.begin(), order.end());
  for (const std::int32_t id : order) {
    const Node& node = other.state_->nodes[id];
    if (node.own != 0.0) {
      s.nodes[find_or_create(node.key)].own += node.own;
    }
  }
  s.total_weight += other.state_->total_weight;
  s.lossy = s.lossy || other.state_->lossy;
  maybe_self_compress();
}

void Flowtree::diff(const Flowtree& other) {
  expects(other.config_.policy == config_.policy &&
              other.config_.features == config_.features,
          "Flowtree::diff: incompatible generalization policy or features");
  State& s = detach();
  std::vector<std::int32_t> order = other.nodes_by_depth_desc();
  std::reverse(order.begin(), order.end());
  for (const std::int32_t id : order) {
    const Node& node = other.state_->nodes[id];
    if (node.own != 0.0) {
      s.nodes[find_or_create(node.key)].own -= node.own;
    }
  }
  s.total_weight -= other.state_->total_weight;
  s.lossy = s.lossy || other.state_->lossy;
  maybe_self_compress();
}

// --- compression -----------------------------------------------------------

void Flowtree::compress(std::size_t target_size) {
  expects(target_size >= 1, "Flowtree::compress: target must be >= 1");
  if (state_->node_count <= target_size) return;
  State& s = detach();
  ++s.compress_count;

  const std::vector<double> scores = subtree_scores();

  // Min-heap of evictable leaves by subtree score. Folding a leaf into its
  // parent leaves the parent's *subtree* score unchanged, so precomputed
  // scores stay valid as parents become leaves.
  using HeapEntry = std::pair<double, std::int32_t>;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap;
  for (std::int32_t id = 0; id < static_cast<std::int32_t>(s.nodes.size()); ++id) {
    if (s.nodes[id].alive && s.nodes[id].first_child == kNone && id != s.root) {
      heap.emplace(scores[id], id);
    }
  }

  while (s.node_count > target_size && !heap.empty()) {
    const auto [score, id] = heap.top();
    heap.pop();
    Node& node = s.nodes[id];
    if (!node.alive || node.first_child != kNone) continue;  // stale entry
    const std::int32_t parent = node.parent;
    s.nodes[parent].own += node.own;  // fold mass upward: totals preserved
    unlink_child(id);
    release(id);
    s.lossy = true;
    if (parent != s.root && s.nodes[parent].first_child == kNone) {
      heap.emplace(scores[parent], parent);
    }
  }

  // Return pool capacity when it dwarfs the live tree, so adapt()/compress()
  // genuinely reduces the memory footprint, not just the node count.
  if (s.nodes.size() > 4 * s.node_count && s.nodes.size() > 64) {
    rebuild_compact();
  }
}

void Flowtree::rebuild_compact() {
  State& s = *state_;
  std::vector<std::pair<flow::FlowKey, double>> live;
  live.reserve(s.node_count);
  for (const Node& node : s.nodes) {
    if (node.alive && node.own != 0.0) live.emplace_back(node.key, node.own);
  }
  s.nodes.clear();
  s.nodes.shrink_to_fit();
  s.free_list.clear();
  s.free_list.shrink_to_fit();
  s.index.clear();
  s.node_count = 0;
  s.feature_presence = {};
  s.root = allocate(flow::FlowKey{}, kNone);
  for (const auto& [key, own] : live) {
    s.nodes[find_or_create(key)].own += own;
  }
}

void Flowtree::suppress_below(double min_score) {
  if (min_score <= 0.0) return;
  State& s = detach();
  const std::vector<double> scores = subtree_scores();
  // Same leaf-folding machinery as compress(), but driven by a score floor
  // instead of a node budget. Folding keeps parents' subtree scores valid.
  using HeapEntry = std::pair<double, std::int32_t>;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap;
  for (std::int32_t id = 0; id < static_cast<std::int32_t>(s.nodes.size()); ++id) {
    if (s.nodes[id].alive && s.nodes[id].first_child == kNone && id != s.root) {
      heap.emplace(scores[id], id);
    }
  }
  while (!heap.empty()) {
    const auto [score, id] = heap.top();
    heap.pop();
    if (score >= min_score) break;  // min-heap: everything left is compliant
    Node& node = s.nodes[id];
    if (!node.alive || node.first_child != kNone) continue;
    const std::int32_t parent = node.parent;
    s.nodes[parent].own += node.own;
    unlink_child(id);
    release(id);
    s.lossy = true;
    if (parent != s.root && s.nodes[parent].first_child == kNone) {
      heap.emplace(scores[parent], parent);
    }
  }
}

void Flowtree::generalize_deeper_than(int max_depth) {
  expects(max_depth >= 0, "Flowtree::generalize_deeper_than: negative depth");
  State& s = detach();
  // Deepest-first so each fold lands directly on a surviving ancestor.
  for (const std::int32_t id : nodes_by_depth_desc()) {
    Node& node = s.nodes[id];
    if (!node.alive || node.depth <= max_depth) continue;
    expects(node.first_child == kNone,
            "Flowtree: deeper children must already be folded");
    const std::int32_t parent = node.parent;
    s.nodes[parent].own += node.own;
    unlink_child(id);
    release(id);
    s.lossy = true;
  }
}

void Flowtree::adapt(const primitives::AdaptSignal& signal) {
  if (signal.size_budget > 0) {
    config_.node_budget = std::max<std::size_t>(2, signal.size_budget);
    maybe_self_compress();
    if (state_->node_count > config_.node_budget) compress(config_.node_budget);
  }
}

// --- self-check ---------------------------------------------------------------

void Flowtree::check_invariants() const {
  Aggregator::check_invariants();
  const auto fail = [](const std::string& what) { throw Error("Flowtree invariant: " + what); };
  const State& s = *state_;

  if (s.node_count + s.free_list.size() != s.nodes.size()) {
    fail("node pool accounting out of sync (live + free != allocated)");
  }
  if (s.root == kNone || s.root >= static_cast<std::int32_t>(s.nodes.size()) ||
      !s.nodes[s.root].alive) {
    fail("missing or dead root");
  }
  if (!std::isfinite(s.total_weight)) fail("non-finite total weight");

  std::size_t live = 0;
  double weight = 0.0;
  std::array<std::int64_t, kFeatureCount> presence{};
  for (std::int32_t id = 0; id < static_cast<std::int32_t>(s.nodes.size()); ++id) {
    const Node& node = s.nodes[id];
    if (!node.alive) continue;
    ++live;
    weight += node.own;
    if (!std::isfinite(node.own)) fail("non-finite own score");
    if (node.key.proto()) ++presence[kFeatProto];
    if (node.key.src().length() > 0) ++presence[kFeatSrcIp];
    if (node.key.dst().length() > 0) ++presence[kFeatDstIp];
    if (node.key.src_port()) ++presence[kFeatSrcPort];
    if (node.key.dst_port()) ++presence[kFeatDstPort];

    // Index round-trips.
    const auto it = s.index.find(node.key);
    if (it == s.index.end() || it->second != id) fail("index mismatch for a live node");

    if (id == s.root) {
      if (node.parent != kNone) fail("root has a parent");
      if (!node.key.is_root()) fail("root key is not the wildcard");
      if (node.depth != 0) fail("root depth is not 0");
      continue;
    }
    if (node.parent == kNone) fail("non-root node without a parent");
    const Node& parent = s.nodes[node.parent];
    if (!parent.alive) fail("parent is dead");
    if (parent.depth + 1 != node.depth) fail("depth is not parent depth + 1");
    const auto up = node.key.parent(config_.policy);
    if (!up || !(*up == parent.key)) fail("parent is not the canonical parent");

    // Sibling list contains the node exactly once.
    int seen = 0;
    for (std::int32_t c = parent.first_child; c != kNone; c = s.nodes[c].next_sibling) {
      if (c == id) ++seen;
      if (s.nodes[c].parent != node.parent) fail("sibling with wrong parent");
    }
    if (seen != 1) fail("node not linked exactly once under its parent");
  }
  if (live != s.node_count) fail("node_count out of sync");
  if (s.index.size() != s.node_count) fail("index size out of sync");
  if (presence != s.feature_presence) {
    fail("feature presence mask out of sync with live nodes");
  }
  if (std::fabs(weight - s.total_weight) >
      1e-6 * std::max(1.0, std::fabs(s.total_weight))) {
    fail("total_weight out of sync with own scores");
  }
  // Doubly-linked sibling lists are symmetric.
  for (std::int32_t id = 0; id < static_cast<std::int32_t>(s.nodes.size()); ++id) {
    const Node& node = s.nodes[id];
    if (!node.alive) continue;
    if (node.next_sibling != kNone && s.nodes[node.next_sibling].prev_sibling != id) {
      fail("next/prev sibling asymmetry");
    }
    if (node.prev_sibling != kNone && s.nodes[node.prev_sibling].next_sibling != id) {
      fail("prev/next sibling asymmetry");
    }
  }
}

// --- Aggregator adapters ----------------------------------------------------

primitives::QueryResult Flowtree::execute(const primitives::Query& q) const {
  using namespace primitives;
  QueryResult result;
  result.approximate = state_->lossy;
  if (const auto* query_point = std::get_if<PointQuery>(&q)) {
    // query_lattice degrades to the O(1)-lookup subtree query for on-chain
    // keys and still answers arbitrary feature combinations otherwise.
    const flow::FlowKey key = query_point->key.project(config_.features);
    result.entries.push_back({key, query_lattice(key)});
    return result;
  }
  if (const auto* query_topk = std::get_if<TopKQuery>(&q)) {
    result.entries = top_k(query_topk->k);
    return result;
  }
  if (const auto* query_above = std::get_if<AboveQuery>(&q)) {
    result.entries = above(query_above->threshold);
    return result;
  }
  if (const auto* query_drill = std::get_if<DrilldownQuery>(&q)) {
    result.entries = drilldown(query_drill->key.project(config_.features));
    return result;
  }
  if (const auto* query_hhh = std::get_if<HHHQuery>(&q)) {
    result.entries = hhh(query_hhh->phi);
    return result;
  }
  return QueryResult::unsupported();  // no time dimension inside one summary
}

bool Flowtree::mergeable_with(const primitives::Aggregator& other) const {
  if (const auto* o = dynamic_cast<const Flowtree*>(&other)) {
    return o->config_.policy == config_.policy &&
           o->config_.features == config_.features;
  }
  if (const auto* f = dynamic_cast<const FlowtreeFoldable*>(&other)) {
    const FlowtreeConfig theirs = f->flowtree_config();
    return theirs.policy == config_.policy &&
           theirs.features == config_.features;
  }
  return false;
}

void Flowtree::merge_from(const primitives::Aggregator& other) {
  expects(mergeable_with(other), "Flowtree::merge_from: incompatible");
  if (const auto* o = dynamic_cast<const Flowtree*>(&other)) {
    merge(*o);
  } else {
    dynamic_cast<const FlowtreeFoldable&>(other).fold_into(*this);
  }
  note_merge(other);
}

std::size_t Flowtree::memory_bytes() const {
  const State& s = *state_;
  return s.nodes.capacity() * sizeof(Node) +
         s.index.size() * (sizeof(flow::FlowKey) + sizeof(std::int32_t) +
                           2 * sizeof(void*));
}

std::size_t Flowtree::wire_bytes() const {
  return kHeaderBytes + state_->node_count * kBytesPerNode;
}

std::unique_ptr<primitives::Aggregator> Flowtree::clone() const {
  return std::make_unique<Flowtree>(*this);
}

}  // namespace megads::flowtree
