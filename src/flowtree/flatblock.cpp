#include "flowtree/flatblock.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <unordered_set>

#include "common/error.hpp"

namespace megads::flowtree {

namespace {

constexpr char kMagic[4] = {'F', 'B', 'K', '1'};
constexpr std::uint8_t kVersion = 1;
constexpr std::uint8_t kHeaderFlagLossy = 1;
constexpr std::uint8_t kFlagProto = 1;
constexpr std::uint8_t kFlagSrcPort = 2;
constexpr std::uint8_t kFlagDstPort = 4;
constexpr std::int32_t kNone = -1;

/// Feature indices of FlatView::presence_, matching Flowtree's mask.
enum Feature : std::size_t {
  kFeatProto = 0,
  kFeatSrcIp = 1,
  kFeatDstIp = 2,
  kFeatSrcPort = 3,
  kFeatDstPort = 4,
};

std::uint16_t load_u16(const std::uint8_t* p) noexcept {
  return static_cast<std::uint16_t>(p[0] | (static_cast<std::uint16_t>(p[1]) << 8));
}

std::uint32_t load_u32(const std::uint8_t* p) noexcept {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::int32_t load_i32(const std::uint8_t* p) noexcept {
  return static_cast<std::int32_t>(load_u32(p));
}

double load_f64(const std::uint8_t* p) noexcept {
  std::uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) bits |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return std::bit_cast<double>(bits);
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_i32(std::vector<std::uint8_t>& out, std::int32_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  const auto bits = std::bit_cast<std::uint64_t>(v);
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(bits >> (8 * i)));
}

[[noreturn]] void bad(const char* what) {
  throw ParseError(std::string("FlatView::parse: ") + what);
}

}  // namespace

// --- FlatView: validation ----------------------------------------------------

bool FlatView::looks_flat(const std::uint8_t* data, std::size_t size) noexcept {
  return size >= 4 && std::memcmp(data, kMagic, 4) == 0;
}

FlowtreeConfig FlatView::config(FlowtreeConfig base) const noexcept {
  base.policy.ip_step = ip_step_;
  base.features = static_cast<flow::FeatureSet>(features_);
  return base;
}

flow::FlowKey FlatView::key_at(std::uint32_t i) const {
  const std::uint8_t* p = data_ + kHeaderBytes + i * kBytesPerNode;
  flow::FlowKey key;
  key.with_src(flow::Prefix(flow::IPv4(load_u32(p + 4)), p[2]))
      .with_dst(flow::Prefix(flow::IPv4(load_u32(p + 8)), p[3]));
  if (p[0] & kFlagProto) key.with_proto(p[1]);
  if (p[0] & kFlagSrcPort) key.with_src_port(load_u16(p + 12));
  if (p[0] & kFlagDstPort) key.with_dst_port(load_u16(p + 14));
  return key;
}

double FlatView::own_at(std::uint32_t i) const {
  return load_f64(data_ + kHeaderBytes + i * kBytesPerNode + 16);
}

std::int32_t FlatView::parent_at(std::uint32_t i) const {
  return load_i32(data_ + kHeaderBytes + i * kBytesPerNode + 24);
}

std::int32_t FlatView::first_child_at(std::uint32_t i) const {
  return load_i32(data_ + kHeaderBytes + i * kBytesPerNode + 28);
}

std::int32_t FlatView::next_sibling_at(std::uint32_t i) const {
  return load_i32(data_ + kHeaderBytes + i * kBytesPerNode + 32);
}

std::int32_t FlatView::depth_at(std::uint32_t i) const {
  return load_i32(data_ + kHeaderBytes + i * kBytesPerNode + 36);
}

FlatView FlatView::parse(const std::uint8_t* data, std::size_t size) {
  if (data == nullptr || size < kHeaderBytes) bad("truncated header");
  if (std::memcmp(data, kMagic, 4) != 0) bad("bad magic");
  if (data[4] != kVersion) bad("unsupported version");
  const std::uint8_t header_flags = data[7];
  if ((header_flags & ~kHeaderFlagLossy) != 0) bad("undefined header flags");
  if ((data[6] & ~static_cast<std::uint8_t>(flow::FeatureSet::kFiveTuple)) != 0) {
    bad("undefined feature bits");
  }
  if (load_u32(data + 12) != 0 || load_u32(data + 24) != 0 ||
      load_u32(data + 28) != 0) {
    bad("reserved bytes must be zero");
  }
  const std::uint32_t count = load_u32(data + 8);
  if (count == 0) bad("missing root node");
  // Divide instead of multiplying so a hostile count cannot overflow the
  // size computation on any platform (same trick as the FTRE decoder).
  if ((size - kHeaderBytes) / kBytesPerNode != count ||
      (size - kHeaderBytes) % kBytesPerNode != 0) {
    bad("node count disagrees with buffer size");
  }

  FlatView view;
  view.data_ = data;
  view.size_ = size;
  view.count_ = count;
  view.ip_step_ = data[5];
  view.features_ = data[6];
  view.lossy_ = (header_flags & kHeaderFlagLossy) != 0;
  view.total_weight_ = load_f64(data + 16);
  if (!std::isfinite(view.total_weight_)) bad("non-finite total weight");

  const flow::GeneralizationPolicy policy{view.ip_step_};
  std::unordered_set<flow::FlowKey> seen;
  seen.reserve(count);
  double weight = 0.0;
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint8_t* p = data + kHeaderBytes + i * kBytesPerNode;
    if ((p[0] & ~(kFlagProto | kFlagSrcPort | kFlagDstPort)) != 0) {
      bad("undefined node flags");
    }
    if (p[2] > 32 || p[3] > 32) bad("prefix length exceeds 32 bits");
    const double own = view.own_at(i);
    if (!std::isfinite(own)) bad("non-finite node score");
    weight += own;

    const flow::FlowKey key = view.key_at(i);
    if (!seen.insert(key).second) bad("duplicate node key");
    const std::int32_t parent = view.parent_at(i);
    const std::int32_t depth = view.depth_at(i);
    if (i == 0) {
      if (parent != kNone || depth != 0) bad("malformed root node");
      if (!key.is_root()) bad("node 0 is not the wildcard root");
    } else {
      // Preorder: every parent precedes its children.
      if (parent < 0 || static_cast<std::uint32_t>(parent) >= i) {
        bad("parent link out of preorder range");
      }
      if (depth != view.depth_at(static_cast<std::uint32_t>(parent)) + 1) {
        bad("depth is not parent depth + 1");
      }
      const auto up = key.parent(policy);
      if (!up || !(*up == view.key_at(static_cast<std::uint32_t>(parent)))) {
        bad("parent is not the canonical parent");
      }
    }
    const std::int32_t first = view.first_child_at(i);
    // Preorder puts a node's first child immediately after it; anything else
    // (self-loops, back-edges, cross-tree offsets) is rejected outright.
    if (first != kNone && static_cast<std::uint32_t>(first) != i + 1) {
      bad("first-child link is not the next preorder node");
    }
    if (first != kNone && static_cast<std::uint32_t>(first) >= count) {
      bad("first-child link out of range");
    }
    const std::int32_t sibling = view.next_sibling_at(i);
    if (sibling != kNone && (static_cast<std::uint32_t>(sibling) <= i ||
                             static_cast<std::uint32_t>(sibling) >= count)) {
      bad("sibling link out of preorder range");
    }

    if (key.proto()) ++view.presence_[kFeatProto];
    if (key.src().length() > 0) ++view.presence_[kFeatSrcIp];
    if (key.dst().length() > 0) ++view.presence_[kFeatDstIp];
    if (key.src_port()) ++view.presence_[kFeatSrcPort];
    if (key.dst_port()) ++view.presence_[kFeatDstPort];
  }
  if (!std::isfinite(weight)) bad("summed weight overflows");
  if (std::fabs(weight - view.total_weight_) >
      1e-6 * std::max(1.0, std::fabs(view.total_weight_))) {
    bad("total weight out of sync with own scores");
  }

  // Child lists must partition the non-root nodes: walking every list (the
  // strictly increasing sibling indices above bound each walk) has to claim
  // each node exactly once via a matching parent link.
  std::uint64_t children_seen = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    for (std::int32_t c = view.first_child_at(i); c != kNone;
         c = view.next_sibling_at(static_cast<std::uint32_t>(c))) {
      if (view.parent_at(static_cast<std::uint32_t>(c)) !=
          static_cast<std::int32_t>(i)) {
        bad("child list crosses into another subtree");
      }
      if (++children_seen >= count) break;
    }
  }
  if (children_seen != count - 1) bad("child lists do not cover all nodes");
  return view;
}

// --- FlatView: Table II reads ------------------------------------------------

std::int32_t FlatView::find(const flow::FlowKey& key) const {
  if (key.is_root()) return 0;
  std::uint32_t cur = 0;
  while (true) {
    std::int32_t descend = kNone;
    for (std::int32_t c = first_child_at(cur); c != kNone;
         c = next_sibling_at(static_cast<std::uint32_t>(c))) {
      const flow::FlowKey child = key_at(static_cast<std::uint32_t>(c));
      if (child == key) return c;
      if (child.generalizes(key)) {
        // At most one child of a chain node generalizes the key: children
        // refine the same canonical step, so a generalizing child is *the*
        // chain child.
        descend = c;
        break;
      }
    }
    if (descend == kNone) return kNone;
    cur = static_cast<std::uint32_t>(descend);
  }
}

double FlatView::query(const flow::FlowKey& key) const {
  const std::int32_t id = find(key);
  if (id == kNone) return 0.0;
  // Sum own scores over the subtree — the same iterative DFS as the pooled
  // tree, over index links instead of pool pointers.
  double total = 0.0;
  std::vector<std::int32_t> stack{id};
  while (!stack.empty()) {
    const auto cur = static_cast<std::uint32_t>(stack.back());
    stack.pop_back();
    total += own_at(cur);
    for (std::int32_t c = first_child_at(cur); c != kNone;
         c = next_sibling_at(static_cast<std::uint32_t>(c))) {
      stack.push_back(c);
    }
  }
  return total;
}

double FlatView::query_lattice(const flow::FlowKey& key) const {
  if ((key.proto() && presence_[kFeatProto] == 0) ||
      (key.src().length() > 0 && presence_[kFeatSrcIp] == 0) ||
      (key.dst().length() > 0 && presence_[kFeatDstIp] == 0) ||
      (key.src_port() && presence_[kFeatSrcPort] == 0) ||
      (key.dst_port() && presence_[kFeatDstPort] == 0)) {
    return 0.0;
  }
  if (find(key) != kNone) return query(key);
  double total = 0.0;
  for (std::uint32_t i = 0; i < count_; ++i) {
    const double own = own_at(i);
    if (own != 0.0 && key.generalizes(key_at(i))) total += own;
  }
  return total;
}

std::vector<KeyScore> FlatView::drilldown(const flow::FlowKey& key) const {
  const std::int32_t id = find(key);
  if (id == kNone) return {};
  // Reverse preorder visits every child before its parent — the same
  // bottom-up accumulation the pooled tree runs in depth-descending order.
  std::vector<double> scores(count_, 0.0);
  for (std::uint32_t i = count_; i-- > 0;) {
    scores[i] += own_at(i);
    const std::int32_t parent = parent_at(i);
    if (parent != kNone) scores[static_cast<std::uint32_t>(parent)] += scores[i];
  }
  std::vector<KeyScore> rows;
  for (std::int32_t c = first_child_at(static_cast<std::uint32_t>(id)); c != kNone;
       c = next_sibling_at(static_cast<std::uint32_t>(c))) {
    rows.push_back({key_at(static_cast<std::uint32_t>(c)),
                    scores[static_cast<std::uint32_t>(c)]});
  }
  std::sort(rows.begin(), rows.end(), primitives::score_before);
  return rows;
}

std::vector<KeyScore> FlatView::top_k(std::size_t k) const {
  std::vector<KeyScore> rows;
  rows.reserve(count_);
  for (std::uint32_t i = 0; i < count_; ++i) {
    const double own = own_at(i);
    if (own != 0.0) rows.push_back({key_at(i), own});
  }
  const std::size_t take = std::min(k, rows.size());
  std::partial_sort(rows.begin(), rows.begin() + static_cast<long>(take),
                    rows.end(), primitives::score_before);
  rows.resize(take);
  return rows;
}

std::vector<KeyScore> FlatView::above(double threshold) const {
  std::vector<KeyScore> rows;
  for (std::uint32_t i = 0; i < count_; ++i) {
    const double own = own_at(i);
    if (own >= threshold) rows.push_back({key_at(i), own});
  }
  std::sort(rows.begin(), rows.end(), primitives::score_before);
  return rows;
}

std::vector<KeyScore> FlatView::hhh(double phi) const {
  expects(phi > 0.0 && phi <= 1.0, "FlatView::hhh: phi must be in (0, 1]");
  if (total_weight_ <= 0.0) return {};
  const double threshold = phi * total_weight_;
  std::vector<double> adjusted(count_, 0.0);
  std::vector<KeyScore> hhh_set;
  for (std::uint32_t i = count_; i-- > 0;) {
    adjusted[i] += own_at(i);
    if (adjusted[i] >= threshold) {
      hhh_set.push_back({key_at(i), adjusted[i]});
    } else if (const std::int32_t parent = parent_at(i); parent != kNone) {
      adjusted[static_cast<std::uint32_t>(parent)] += adjusted[i];
    }
  }
  std::sort(hhh_set.begin(), hhh_set.end(), primitives::score_before);
  return hhh_set;
}

std::vector<KeyScore> FlatView::entries() const {
  std::vector<KeyScore> rows;
  rows.reserve(count_);
  for (std::uint32_t i = 0; i < count_; ++i) rows.push_back({key_at(i), own_at(i)});
  return rows;
}

primitives::QueryResult FlatView::execute(const primitives::Query& q) const {
  using namespace primitives;
  QueryResult result;
  result.approximate = lossy_;
  if (const auto* query_point = std::get_if<PointQuery>(&q)) {
    const flow::FlowKey key = query_point->key.project(features());
    result.entries.push_back({key, query_lattice(key)});
    return result;
  }
  if (const auto* query_topk = std::get_if<TopKQuery>(&q)) {
    result.entries = top_k(query_topk->k);
    return result;
  }
  if (const auto* query_above = std::get_if<AboveQuery>(&q)) {
    result.entries = above(query_above->threshold);
    return result;
  }
  if (const auto* query_drill = std::get_if<DrilldownQuery>(&q)) {
    result.entries = drilldown(query_drill->key.project(features()));
    return result;
  }
  if (const auto* query_hhh = std::get_if<HHHQuery>(&q)) {
    result.entries = hhh(query_hhh->phi);
    return result;
  }
  return QueryResult::unsupported();
}

// --- FlatCodec ---------------------------------------------------------------

std::vector<std::uint8_t> FlatCodec::encode(const Flowtree& tree) {
  const auto& s = *tree.state_;
  std::vector<std::uint8_t> out;
  out.reserve(FlatView::kHeaderBytes + s.node_count * FlatView::kBytesPerNode);

  for (const char c : kMagic) out.push_back(static_cast<std::uint8_t>(c));
  out.push_back(kVersion);
  out.push_back(static_cast<std::uint8_t>(tree.config_.policy.ip_step));
  out.push_back(static_cast<std::uint8_t>(tree.config_.features));
  out.push_back(s.lossy ? kHeaderFlagLossy : 0);
  put_u32(out, static_cast<std::uint32_t>(s.node_count));
  put_u32(out, 0);
  put_f64(out, s.total_weight);
  put_u32(out, 0);
  put_u32(out, 0);

  // Preorder walk assigning flat indices; pushing each child list reversed
  // makes the stack pop siblings in pool order, so flat sibling order — and
  // with it every DFS summation order — matches the pooled tree exactly.
  std::vector<std::int32_t> order;
  order.reserve(s.node_count);
  std::vector<std::int32_t> flat_of(s.nodes.size(), kNone);
  std::vector<std::int32_t> stack{s.root};
  std::vector<std::int32_t> children;
  while (!stack.empty()) {
    const std::int32_t id = stack.back();
    stack.pop_back();
    flat_of[static_cast<std::size_t>(id)] =
        static_cast<std::int32_t>(order.size());
    order.push_back(id);
    children.clear();
    for (std::int32_t c = s.nodes[static_cast<std::size_t>(id)].first_child;
         c != kNone; c = s.nodes[static_cast<std::size_t>(c)].next_sibling) {
      children.push_back(c);
    }
    stack.insert(stack.end(), children.rbegin(), children.rend());
  }
  expects(order.size() == s.node_count,
          "FlatCodec::encode: unreachable live nodes");

  const auto map_link = [&](std::int32_t pool_id) {
    return pool_id == kNone ? kNone : flat_of[static_cast<std::size_t>(pool_id)];
  };
  for (const std::int32_t id : order) {
    const auto& node = s.nodes[static_cast<std::size_t>(id)];
    const auto& key = node.key;
    std::uint8_t flags = 0;
    if (key.proto()) flags |= kFlagProto;
    if (key.src_port()) flags |= kFlagSrcPort;
    if (key.dst_port()) flags |= kFlagDstPort;
    out.push_back(flags);
    out.push_back(key.proto().value_or(0));
    out.push_back(static_cast<std::uint8_t>(key.src().length()));
    out.push_back(static_cast<std::uint8_t>(key.dst().length()));
    put_u32(out, key.src().address().value());
    put_u32(out, key.dst().address().value());
    put_u16(out, key.src_port().value_or(0));
    put_u16(out, key.dst_port().value_or(0));
    put_f64(out, node.own);
    put_i32(out, map_link(node.parent));
    put_i32(out, map_link(node.first_child));
    put_i32(out, map_link(node.next_sibling));
    put_i32(out, node.depth);
  }
  return out;
}

Flowtree FlatCodec::to_flowtree(const FlatView& view, FlowtreeConfig config) {
  config = view.config(config);
  Flowtree tree(config);
  // Disable self-compression while loading, exactly like the FTRE decoder,
  // so the conversion is lossless; then restore the configured budget.
  const std::size_t budget = tree.config_.node_budget;
  tree.config_.node_budget =
      std::max<std::size_t>(budget, view.node_count() + 1);
  Flowtree::State& s = *tree.state_;  // freshly constructed: exclusively owned
  for (std::uint32_t i = 0; i < view.node_count(); ++i) {
    const double own = view.own_at(i);
    if (own != 0.0) {
      s.nodes[static_cast<std::size_t>(tree.find_or_create(view.key_at(i)))]
          .own += own;
      s.total_weight += own;
    } else {
      tree.find_or_create(view.key_at(i));
    }
  }
  tree.config_.node_budget = budget;
  tree.state_->lossy = view.lossy();
  return tree;
}

void FlatCodec::merge_into(const FlatView& view, Flowtree& accumulator) {
  expects(accumulator.config_.policy.ip_step == view.ip_step() &&
              accumulator.config_.features == view.features(),
          "FlatCodec::merge_into: incompatible policy or features");
  Flowtree::State& s = accumulator.detach();
  // Preorder lists parents before children, so chains splice as cheaply as
  // Flowtree::merge's parents-first order.
  for (std::uint32_t i = 0; i < view.node_count(); ++i) {
    const double own = view.own_at(i);
    if (own != 0.0) {
      s.nodes[static_cast<std::size_t>(
                  accumulator.find_or_create(view.key_at(i)))]
          .own += own;
    }
  }
  s.total_weight += view.total_weight();
  s.lossy = s.lossy || view.lossy();
  accumulator.maybe_self_compress();
}

std::vector<std::uint8_t> FlatCodec::normalize(
    const std::vector<std::uint8_t>& bytes, FlowtreeConfig config) {
  if (FlatView::looks_flat(bytes)) {
    (void)FlatView::parse(bytes);  // hostile bytes are rejected at ingest
    return bytes;
  }
  return encode(Flowtree::decode(bytes, config));
}

// --- MergedView --------------------------------------------------------------

MergedView MergedView::from_flat(
    std::shared_ptr<const std::vector<std::uint8_t>> bytes) {
  expects(bytes != nullptr, "MergedView::from_flat: null buffer");
  MergedView view;
  view.view_ = FlatView::parse(*bytes);
  view.bytes_ = std::move(bytes);
  return view;
}

bool MergedView::lossy() const noexcept {
  return tree_ ? tree_->lossy() : view_.lossy();
}

double MergedView::total_weight() const noexcept {
  return tree_ ? tree_->total_weight() : view_.total_weight();
}

double MergedView::query(const flow::FlowKey& key) const {
  return tree_ ? tree_->query(key) : view_.query(key);
}

double MergedView::query_lattice(const flow::FlowKey& key) const {
  return tree_ ? tree_->query_lattice(key) : view_.query_lattice(key);
}

std::vector<KeyScore> MergedView::drilldown(const flow::FlowKey& key) const {
  return tree_ ? tree_->drilldown(key) : view_.drilldown(key);
}

std::vector<KeyScore> MergedView::top_k(std::size_t k) const {
  return tree_ ? tree_->top_k(k) : view_.top_k(k);
}

std::vector<KeyScore> MergedView::above(double threshold) const {
  return tree_ ? tree_->above(threshold) : view_.above(threshold);
}

std::vector<KeyScore> MergedView::hhh(double phi) const {
  return tree_ ? tree_->hhh(phi) : view_.hhh(phi);
}

std::vector<KeyScore> MergedView::entries() const {
  return tree_ ? tree_->entries() : view_.entries();
}

Flowtree MergedView::to_tree(FlowtreeConfig config) const {
  return tree_ ? *tree_ : FlatCodec::to_flowtree(view_, config);
}

}  // namespace megads::flowtree
