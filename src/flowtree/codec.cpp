// Flowtree wire codec: a compact little-endian format used when a data store
// exports summaries to other stores or to FlowDB (Fig. 5, arrows 3/4).
//
// Layout:
//   header (16 bytes): magic "FTRE", version, ip_step, features, pad,
//                      node count (u32), pad (u32)
//   per node (24 bytes): flags, proto, src_len, dst_len, src (u32), dst (u32),
//                      src_port (u16), dst_port (u16), own score (f64)
#include <bit>
#include <cmath>
#include <cstring>

#include "common/error.hpp"
#include "flowtree/flowtree.hpp"

namespace megads::flowtree {

namespace {

constexpr std::uint8_t kVersion = 1;
constexpr std::uint8_t kFlagProto = 1;
constexpr std::uint8_t kFlagSrcPort = 2;
constexpr std::uint8_t kFlagDstPort = 4;
constexpr char kMagic[4] = {'F', 'T', 'R', 'E'};

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  const auto bits = std::bit_cast<std::uint64_t>(v);
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(bits >> (8 * i)));
}

class Reader {
 public:
  Reader(const std::vector<std::uint8_t>& bytes) : data_(bytes) {}

  std::uint8_t u8() { return data_.at(pos_++); }
  std::uint16_t u16() {
    const std::uint16_t v = static_cast<std::uint16_t>(
        data_.at(pos_) | (static_cast<std::uint16_t>(data_.at(pos_ + 1)) << 8));
    pos_ += 2;
    return v;
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_.at(pos_ + i)) << (8 * i);
    pos_ += 4;
    return v;
  }
  double f64() {
    std::uint64_t bits = 0;
    for (int i = 0; i < 8; ++i) bits |= static_cast<std::uint64_t>(data_.at(pos_ + i)) << (8 * i);
    pos_ += 8;
    return std::bit_cast<double>(bits);
  }

 private:
  const std::vector<std::uint8_t>& data_;
  std::size_t pos_ = 0;
};

}  // namespace

std::vector<std::uint8_t> Flowtree::encode() const {
  const State& s = *state_;
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderBytes + s.node_count * kBytesPerNode);

  for (const char c : kMagic) out.push_back(static_cast<std::uint8_t>(c));
  out.push_back(kVersion);
  out.push_back(static_cast<std::uint8_t>(config_.policy.ip_step));
  out.push_back(static_cast<std::uint8_t>(config_.features));
  out.push_back(s.lossy ? 1 : 0);
  put_u32(out, static_cast<std::uint32_t>(s.node_count));
  put_u32(out, 0);

  for (const Node& node : s.nodes) {
    if (!node.alive) continue;
    const auto& key = node.key;
    std::uint8_t flags = 0;
    if (key.proto()) flags |= kFlagProto;
    if (key.src_port()) flags |= kFlagSrcPort;
    if (key.dst_port()) flags |= kFlagDstPort;
    out.push_back(flags);
    out.push_back(key.proto().value_or(0));
    out.push_back(static_cast<std::uint8_t>(key.src().length()));
    out.push_back(static_cast<std::uint8_t>(key.dst().length()));
    put_u32(out, key.src().address().value());
    put_u32(out, key.dst().address().value());
    put_u16(out, key.src_port().value_or(0));
    put_u16(out, key.dst_port().value_or(0));
    put_f64(out, node.own);
  }
  return out;
}

Flowtree Flowtree::decode(const std::vector<std::uint8_t>& bytes,
                          FlowtreeConfig config) {
  if (bytes.size() < kHeaderBytes) {
    throw ParseError("Flowtree::decode: truncated header");
  }
  Reader in(bytes);
  char magic[4];
  for (char& c : magic) c = static_cast<char>(in.u8());
  if (std::memcmp(magic, kMagic, 4) != 0) {
    throw ParseError("Flowtree::decode: bad magic");
  }
  const std::uint8_t version = in.u8();
  if (version != kVersion) {
    throw ParseError("Flowtree::decode: unsupported version " +
                     std::to_string(version));
  }
  config.policy.ip_step = in.u8();
  const std::uint8_t feature_bits = in.u8();
  if ((feature_bits &
       ~static_cast<std::uint8_t>(flow::FeatureSet::kFiveTuple)) != 0) {
    throw ParseError("Flowtree::decode: undefined feature bits");
  }
  config.features = static_cast<flow::FeatureSet>(feature_bits);
  const bool lossy = in.u8() != 0;
  const std::uint32_t count = in.u32();
  in.u32();  // padding
  // Divide instead of multiplying so a hostile count cannot overflow the
  // size computation (or drive the reserve below) on any platform.
  if (count > (bytes.size() - kHeaderBytes) / kBytesPerNode) {
    throw ParseError("Flowtree::decode: truncated body");
  }

  Flowtree tree(config);
  // Nodes may arrive in any order; disable self-compression while loading so
  // decode(encode(t)) is exact, then restore the configured budget.
  const std::size_t budget = tree.config_.node_budget;
  tree.config_.node_budget = std::max<std::size_t>(budget, count + 1);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint8_t flags = in.u8();
    const std::uint8_t proto = in.u8();
    const int src_len = in.u8();
    const int dst_len = in.u8();
    const flow::IPv4 src(in.u32());
    const flow::IPv4 dst(in.u32());
    const std::uint16_t src_port = in.u16();
    const std::uint16_t dst_port = in.u16();
    const double own = in.f64();

    // Malformed fields are rejected rather than silently normalized:
    // accepting them would make decode(encode(t)) lossy in ways the caller
    // cannot see (a clamped prefix widens the flow; a NaN score poisons
    // total_weight() — the latter found by fuzz_flowtree_decode).
    if ((flags & ~(kFlagProto | kFlagSrcPort | kFlagDstPort)) != 0) {
      throw ParseError("Flowtree::decode: undefined node flags");
    }
    if (src_len > 32 || dst_len > 32) {
      throw ParseError("Flowtree::decode: prefix length exceeds 32 bits");
    }
    if (!std::isfinite(own)) {
      throw ParseError("Flowtree::decode: non-finite node score");
    }

    flow::FlowKey key;
    key.with_src(flow::Prefix(src, src_len)).with_dst(flow::Prefix(dst, dst_len));
    if (flags & kFlagProto) key.with_proto(proto);
    if (flags & kFlagSrcPort) key.with_src_port(src_port);
    if (flags & kFlagDstPort) key.with_dst_port(dst_port);

    if (own != 0.0) {
      State& s = *tree.state_;  // freshly constructed: exclusively owned
      s.nodes[tree.find_or_create(key)].own += own;
      s.total_weight += own;
    } else {
      tree.find_or_create(key);
    }
  }
  tree.config_.node_budget = budget;
  tree.state_->lossy = lossy;
  if (!std::isfinite(tree.state_->total_weight)) {
    // Every score was finite but the sum overflowed.
    throw ParseError("Flowtree::decode: total weight overflows");
  }
  return tree;
}

}  // namespace megads::flowtree
