// Flat summary blocks — the zero-copy sibling of the FTRE codec.
//
// FBK1 is a flat, 8-byte-aligned, block-structured encoding of a Flowtree:
// one fixed-size header followed by fixed-size node records in *preorder*,
// with child/sibling links as node indices instead of heap pointers. Because
// parents precede children and a node's subtree is contiguous, a single
// buffer supports every Table II read operator without materializing a node
// pool: FlatView answers query / query_lattice / top_k / above / hhh /
// drilldown directly over the bytes. The same bytes are the wire format
// (flowdb/partitioned envelopes carry them verbatim), the query format
// (MergedView hands them to the FlowQL executor), and the on-disk format
// (store/spill mmaps sealed partitions as flat-block files).
//
// Layout (all integers little-endian; offsets 8-byte aligned by design):
//
//   header (32 bytes):
//     0  magic "FBK1"
//     4  version (u8) | ip_step (u8) | features (u8) | flags (u8, bit0=lossy)
//     8  node count (u32)
//     12 reserved (u32, must be 0)
//     16 total weight (f64)
//     24 reserved (u64, must be 0)
//   per node (40 bytes, preorder; node 0 is the wildcard root):
//     0  key flags (u8) | proto (u8) | src_len (u8) | dst_len (u8)
//     4  src (u32) | dst (u32) | src_port (u16) | dst_port (u16)
//     16 own score (f64)
//     24 parent (i32) | first_child (i32) | next_sibling (i32) | depth (i32)
//
// The decoder is strict, like the FTRE and envelope codecs: bad magic or
// version, undefined flag bits, counts that disagree with the buffer size,
// trailing bytes, non-finite scores, out-of-range or non-preorder links,
// cyclic or shared child lists, non-canonical parenthood, and duplicate keys
// are all ParseError. A parsed FlatView is therefore a proof that every
// index dereference below is in bounds — queries run without further checks.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "flowtree/flowtree.hpp"

namespace megads::flowtree {

/// Bounds-checked zero-copy reader over one flat block. Non-owning: the
/// underlying buffer (wire payload, cache entry, mmapped file) must outlive
/// the view. Copying a view is copying a pointer.
class FlatView {
 public:
  static constexpr std::size_t kHeaderBytes = 32;
  static constexpr std::size_t kBytesPerNode = 40;

  /// An unparsed view; every accessor requires a parsed one.
  FlatView() = default;

  /// Validate `size` bytes at `data` and return a view over them. Throws
  /// ParseError on any deviation from the format contract above.
  static FlatView parse(const std::uint8_t* data, std::size_t size);
  static FlatView parse(const std::vector<std::uint8_t>& bytes) {
    return parse(bytes.data(), bytes.size());
  }
  /// Deleted: a view over a temporary buffer dangles at the semicolon.
  static FlatView parse(std::vector<std::uint8_t>&&) = delete;

  /// Cheap magic sniff (no validation): true when the buffer starts like a
  /// flat block rather than an FTRE payload.
  [[nodiscard]] static bool looks_flat(const std::uint8_t* data,
                                       std::size_t size) noexcept;
  [[nodiscard]] static bool looks_flat(
      const std::vector<std::uint8_t>& bytes) noexcept {
    return looks_flat(bytes.data(), bytes.size());
  }

  // --- header accessors ---
  [[nodiscard]] std::uint32_t node_count() const noexcept { return count_; }
  [[nodiscard]] double total_weight() const noexcept { return total_weight_; }
  [[nodiscard]] bool lossy() const noexcept { return lossy_; }
  [[nodiscard]] int ip_step() const noexcept { return ip_step_; }
  [[nodiscard]] flow::FeatureSet features() const noexcept {
    return static_cast<flow::FeatureSet>(features_);
  }
  /// `base` with the policy/features this block was encoded under.
  [[nodiscard]] FlowtreeConfig config(FlowtreeConfig base = {}) const noexcept;
  [[nodiscard]] const std::uint8_t* data() const noexcept { return data_; }
  [[nodiscard]] std::size_t size_bytes() const noexcept { return size_; }

  // --- per-node accessors (indices are valid in [0, node_count)) ---
  [[nodiscard]] flow::FlowKey key_at(std::uint32_t i) const;
  [[nodiscard]] double own_at(std::uint32_t i) const;
  [[nodiscard]] std::int32_t parent_at(std::uint32_t i) const;
  [[nodiscard]] std::int32_t first_child_at(std::uint32_t i) const;
  [[nodiscard]] std::int32_t next_sibling_at(std::uint32_t i) const;
  [[nodiscard]] std::int32_t depth_at(std::uint32_t i) const;

  // --- Table II read operators, in place over the buffer. Each mirrors the
  // pooled Flowtree method of the same name: identical results for exact
  // (integer-weight) folds, identical up to summation-order rounding
  // otherwise (the docs/PARALLELISM.md caveat).
  [[nodiscard]] double query(const flow::FlowKey& key) const;
  [[nodiscard]] double query_lattice(const flow::FlowKey& key) const;
  [[nodiscard]] std::vector<KeyScore> drilldown(const flow::FlowKey& key) const;
  [[nodiscard]] std::vector<KeyScore> top_k(std::size_t k) const;
  [[nodiscard]] std::vector<KeyScore> above(double threshold) const;
  [[nodiscard]] std::vector<KeyScore> hhh(double phi) const;
  [[nodiscard]] std::vector<KeyScore> entries() const;
  /// The Aggregator-style query dispatch (mirrors Flowtree::execute).
  [[nodiscard]] primitives::QueryResult execute(
      const primitives::Query& query) const;

  /// Node index of `key`, or -1. Canonical-chain descent from the root: at
  /// each step exactly one child can generalize the key (chains are unique),
  /// so the walk is O(depth x sibling-width) without an index.
  [[nodiscard]] std::int32_t find(const flow::FlowKey& key) const;

 private:
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  std::uint32_t count_ = 0;
  double total_weight_ = 0.0;
  std::uint8_t ip_step_ = 8;
  std::uint8_t features_ = 0;
  bool lossy_ = false;
  /// Live-node feature counts, computed once at parse: query_lattice's O(1)
  /// absent-feature early exit (same mask the pooled tree maintains).
  std::array<std::int64_t, 5> presence_{};
};

/// Converters between flat blocks and the pooled representation. A friend of
/// Flowtree: encode walks the live pool, to_flowtree/merge_into rebuild or
/// fold through the same raised-budget find_or_create discipline as the FTRE
/// decoder, so conversions never trigger mid-load self-compression.
class FlatCodec {
 public:
  /// Single-pass pooled -> flat conversion (preorder walk of the pool).
  [[nodiscard]] static std::vector<std::uint8_t> encode(const Flowtree& tree);

  /// Single-pass flat -> pooled conversion. `config` supplies node budget and
  /// slack; policy/features come from the block header (like FTRE decode).
  [[nodiscard]] static Flowtree to_flowtree(const FlatView& view,
                                            FlowtreeConfig config = {});

  /// Table II Merge of a flat operand directly into a pooled accumulator —
  /// exactly `acc.merge(to_flowtree(view))` without materializing the
  /// intermediate tree. Preorder already lists parents before children, so
  /// chains splice as cheaply as in Flowtree::merge.
  static void merge_into(const FlatView& view, Flowtree& accumulator);

  /// Normalize wire bytes to the flat format: flat blocks are validated and
  /// returned verbatim; FTRE payloads are decoded and re-encoded flat; other
  /// bytes are ParseError. The one legacy-decode choke point the wire layers
  /// call at ingest, keeping Flowtree::decode off every response path.
  [[nodiscard]] static std::vector<std::uint8_t> normalize(
      const std::vector<std::uint8_t>& bytes, FlowtreeConfig config = {});
};

/// A merged query operand: either a pooled Flowtree or a shared flat block
/// served zero-copy. SummarySource::merged_view returns this so the FlowQL
/// executor can run Table II reads without forcing a pool materialization;
/// to_tree() materializes on demand for the operators that mutate (diff).
class MergedView {
 public:
  explicit MergedView(Flowtree tree) : tree_(std::move(tree)) {}

  /// A view over shared flat bytes (validates; throws ParseError). The view
  /// keeps the buffer alive for its own lifetime.
  static MergedView from_flat(std::shared_ptr<const std::vector<std::uint8_t>> bytes);

  [[nodiscard]] bool flat() const noexcept { return !tree_.has_value(); }
  [[nodiscard]] bool lossy() const noexcept;
  [[nodiscard]] double total_weight() const noexcept;

  [[nodiscard]] double query(const flow::FlowKey& key) const;
  [[nodiscard]] double query_lattice(const flow::FlowKey& key) const;
  [[nodiscard]] std::vector<KeyScore> drilldown(const flow::FlowKey& key) const;
  [[nodiscard]] std::vector<KeyScore> top_k(std::size_t k) const;
  [[nodiscard]] std::vector<KeyScore> above(double threshold) const;
  [[nodiscard]] std::vector<KeyScore> hhh(double phi) const;
  [[nodiscard]] std::vector<KeyScore> entries() const;

  /// Materialize the pooled form (O(1) copy-on-write when already pooled).
  [[nodiscard]] Flowtree to_tree(FlowtreeConfig config = {}) const;

 private:
  MergedView() = default;

  std::shared_ptr<const std::vector<std::uint8_t>> bytes_;
  FlatView view_;
  std::optional<Flowtree> tree_;
};

}  // namespace megads::flowtree
