// FlowQL lexer: splits a statement into words, symbols, and string literals.
// Words keep '.', '/', ':' and '-' so IP prefixes and range literals like
// "0s..60s" survive as single tokens for the parser to interpret in context.
#pragma once

#include <string>
#include <vector>

namespace megads::flowdb {

enum class TokenKind {
  kWord,     ///< identifier, keyword, number, prefix, or time-range literal
  kString,   ///< '...' literal (quotes stripped)
  kLParen,
  kRParen,
  kComma,
  kEquals,
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  std::size_t offset = 0;  ///< position in the input, for error messages
};

/// Tokenize a FlowQL statement; throws ParseError on unterminated strings or
/// unexpected characters.
[[nodiscard]] std::vector<Token> tokenize(const std::string& input);

}  // namespace megads::flowdb
