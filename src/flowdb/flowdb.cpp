#include "flowdb/flowdb.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "flowtree/flatblock.hpp"

namespace megads::flowdb {

namespace {

/// First word of every cache key: full (intervals, locations) views vs
/// aligned stage-1 blocks. Group lengths are encoded explicitly in view
/// keys, so keys of different structure can never collide.
constexpr std::uint64_t kTagView = 0;
constexpr std::uint64_t kTagBlock = 1;

std::uint64_t fnv1a(const std::vector<std::uint8_t>& bytes) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

std::size_t FlowDB::ViewKeyHash::operator()(const ViewKey& key) const noexcept {
  std::uint64_t h = 1469598103934665603ULL;
  for (const std::uint64_t word : key.words) {
    h ^= word;
    h *= 1099511628211ULL;
    h ^= h >> 29;
  }
  return static_cast<std::size_t>(h);
}

FlowDB::FlowDB(flowtree::FlowtreeConfig tree_config) : tree_config_(tree_config) {}

FlowDB::FlowDB(FlowDB&& other) noexcept
    : tree_config_(other.tree_config_),
      entries_(std::move(other.entries_)),
      next_seq_(other.next_seq_),
      pool_(other.pool_),
      view_cache_(std::move(other.view_cache_)),
      decode_memo_(std::move(other.decode_memo_)),
      metric_hits_(other.metric_hits_),
      metric_misses_(other.metric_misses_),
      metric_evictions_(other.metric_evictions_),
      metric_decode_hits_(other.metric_decode_hits_),
      metric_decode_misses_(other.metric_decode_misses_),
      metric_bytes_(other.metric_bytes_),
      metric_hit_ratio_(other.metric_hit_ratio_) {}

FlowDB& FlowDB::operator=(FlowDB&& other) noexcept {
  if (this != &other) {
    tree_config_ = other.tree_config_;
    entries_ = std::move(other.entries_);
    next_seq_ = other.next_seq_;
    pool_ = other.pool_;
    view_cache_ = std::move(other.view_cache_);
    decode_memo_ = std::move(other.decode_memo_);
    metric_hits_ = other.metric_hits_;
    metric_misses_ = other.metric_misses_;
    metric_evictions_ = other.metric_evictions_;
    metric_decode_hits_ = other.metric_decode_hits_;
    metric_decode_misses_ = other.metric_decode_misses_;
    metric_bytes_ = other.metric_bytes_;
    metric_hit_ratio_ = other.metric_hit_ratio_;
  }
  return *this;
}

void FlowDB::add(flowtree::Flowtree tree, TimeInterval interval,
                 std::string location) {
  expects(tree.config().policy == tree_config_.policy &&
              tree.config().features == tree_config_.features,
          "FlowDB::add: summary's generalization policy/features do not match");
  expects(!interval.empty(), "FlowDB::add: empty interval");
  Entry entry{SummaryMeta{interval, std::move(location)}, std::move(tree), 0};
  const WriterLock lock(entries_mu_);
  entry.seq = next_seq_++;
  const auto pos = std::upper_bound(
      entries_.begin(), entries_.end(), entry, [](const Entry& a, const Entry& b) {
        if (a.meta.location != b.meta.location) {
          return a.meta.location < b.meta.location;
        }
        return a.meta.interval.begin < b.meta.interval.begin;
      });
  entries_.insert(pos, std::move(entry));
  // No cache invalidation: keys are content-addressed by summary sequence
  // numbers, and a new summary changes which sequences any affected
  // selection maps to. Stale entries age out of the LRU.
}

std::size_t FlowDB::summary_count() const {
  const ReaderLock lock(entries_mu_);
  return entries_.size();
}

std::uint64_t FlowDB::version() const {
  const ReaderLock lock(entries_mu_);
  return next_seq_ - 1;
}

void FlowDB::add_encoded(const std::vector<std::uint8_t>& bytes,
                         TimeInterval interval, std::string location) {
  const std::uint64_t digest = fnv1a(bytes);
  // The memo lock is never held across add(): merged() nests cache_mu_
  // inside the shared entries lock, so taking them in the opposite order
  // here would be a lock-order inversion.
  std::optional<flowtree::Flowtree> decoded;
  {
    const MutexLock lock(cache_mu_);
    if (decode_memo_.byte_budget(cache_mu_) > 0) {
      DecodedBytes* hit = decode_memo_.get(digest, cache_mu_);
      if (hit != nullptr && hit->bytes == bytes) {
        ++decode_hits_;
        decoded = hit->tree;  // O(1) copy-on-write
      } else {
        ++decode_misses_;
      }
      publish_cache_metrics();
    }
  }
  if (!decoded) {
    // Either wire format may arrive here: flat blocks from the partitioned
    // layer, FTRE from legacy exporters. The memo covers both (keyed on the
    // exact bytes), so a warm re-registration decodes neither.
    if (flowtree::FlatView::looks_flat(bytes)) {
      const flowtree::FlatView view = flowtree::FlatView::parse(bytes);
      decoded = flowtree::FlatCodec::to_flowtree(view, tree_config_);
    } else {
      decoded = flowtree::Flowtree::decode(bytes, tree_config_);
    }
    const MutexLock lock(cache_mu_);
    decode_memo_.put(digest, DecodedBytes{bytes, *decoded},
                     bytes.size() + decoded->memory_bytes(), cache_mu_);
    publish_cache_metrics();
  }
  add(std::move(*decoded), interval, std::move(location));
}

std::vector<std::string> FlowDB::locations() const {
  const ReaderLock lock(entries_mu_);
  std::vector<std::string> names;
  for (const Entry& entry : entries_) {
    if (names.empty() || names.back() != entry.meta.location) {
      names.push_back(entry.meta.location);
    }
  }
  return names;
}

std::vector<std::string> FlowDB::matching_locations(
    const std::vector<TimeInterval>& intervals,
    const std::vector<std::string>& locations) const {
  // Mirrors merged()'s selection exactly: a location is reported iff merged()
  // would build a stage-1 group for it.
  const auto wanted_time = [&](const TimeInterval& interval) {
    if (intervals.empty()) return true;
    return std::any_of(intervals.begin(), intervals.end(),
                       [&](const TimeInterval& w) { return w.overlaps(interval); });
  };
  const auto wanted_location = [&](const std::string& location) {
    if (locations.empty()) return true;
    return std::find(locations.begin(), locations.end(), location) !=
           locations.end();
  };
  const ReaderLock lock(entries_mu_);
  std::vector<std::string> names;  // entries_ is location-sorted → so is this
  for (const Entry& entry : entries_) {
    if (!names.empty() && names.back() == entry.meta.location) continue;
    if (wanted_location(entry.meta.location) && wanted_time(entry.meta.interval)) {
      names.push_back(entry.meta.location);
    }
  }
  return names;
}

std::optional<TimeInterval> FlowDB::coverage() const {
  const ReaderLock lock(entries_mu_);
  if (entries_.empty()) return std::nullopt;
  TimeInterval total = entries_.front().meta.interval;
  for (const Entry& entry : entries_) total = total.span(entry.meta.interval);
  return total;
}

void FlowDB::set_view_cache_budget(std::size_t bytes) {
  const MutexLock lock(cache_mu_);
  view_cache_.set_byte_budget(bytes, cache_mu_);
  publish_cache_metrics();
}

std::size_t FlowDB::view_cache_budget() const {
  const MutexLock lock(cache_mu_);
  return view_cache_.byte_budget(cache_mu_);
}

void FlowDB::attach_metrics(metrics::MetricsRegistry& registry) {
  const MutexLock lock(cache_mu_);
  metric_hits_ = &registry.counter("flowdb.view_cache_hits");
  metric_misses_ = &registry.counter("flowdb.view_cache_misses");
  metric_evictions_ = &registry.counter("flowdb.view_cache_evictions");
  metric_decode_hits_ = &registry.counter("flowdb.decode_hits");
  metric_decode_misses_ = &registry.counter("flowdb.decode_misses");
  metric_bytes_ = &registry.gauge("flowdb.view_cache_bytes");
  metric_hit_ratio_ = &registry.gauge("flowdb.view_cache_hit_ratio");
}

void FlowDB::publish_cache_metrics() const {
  if (metric_hits_ == nullptr) return;
  metric_hits_->add(view_cache_.hits(cache_mu_) - published_hits_);
  metric_misses_->add(view_cache_.misses(cache_mu_) - published_misses_);
  metric_evictions_->add(view_cache_.evictions(cache_mu_) - published_evictions_);
  metric_decode_hits_->add(decode_hits_ - published_decode_hits_);
  metric_decode_misses_->add(decode_misses_ - published_decode_misses_);
  published_hits_ = view_cache_.hits(cache_mu_);
  published_misses_ = view_cache_.misses(cache_mu_);
  published_evictions_ = view_cache_.evictions(cache_mu_);
  published_decode_hits_ = decode_hits_;
  published_decode_misses_ = decode_misses_;
  metric_bytes_->set(static_cast<double>(view_cache_.bytes(cache_mu_)));
  metric_hit_ratio_->set(view_cache_.hit_ratio(cache_mu_));
}

flowtree::Flowtree FlowDB::fold_aligned(const Entry* const* slice,
                                        std::size_t at, std::size_t len,
                                        bool populate) const {
  ViewKey key;
  key.words.reserve(len + 1);
  key.words.push_back(kTagBlock);
  for (std::size_t i = at; i < at + len; ++i) key.words.push_back(slice[i]->seq);
  {
    const MutexLock lock(cache_mu_);
    if (view_cache_.byte_budget(cache_mu_) > 0) {
      if (const flowtree::Flowtree* hit = view_cache_.get(key, cache_mu_)) {
        return *hit;  // O(1) copy-on-write handout
      }
    }
  }
  flowtree::Flowtree block(tree_config_);
  const std::size_t half = len / 2;
  if (half == 1) {
    block.merge(slice[at]->tree);  // adopt fast path: O(1) state share
    block.merge(slice[at + 1]->tree);
  } else {
    block.merge(fold_aligned(slice, at, half, populate));
    block.merge(fold_aligned(slice, at + half, half, populate));
  }
  if (populate) {
    const MutexLock lock(cache_mu_);
    view_cache_.put(key, block, block.memory_bytes(), cache_mu_);
  }
  return block;
}

void FlowDB::fold_run(flowtree::Flowtree& acc, const Entry* const* slice,
                      std::size_t lo, std::size_t hi, bool populate) const {
  // Greedy aligned decomposition: the largest power-of-two block that starts
  // at `lo` (lo % len == 0) and fits. Alignment is what makes the blocks of
  // overlapping windows coincide: a window sliding by one epoch re-derives
  // the same interior blocks and only re-merges the blocks that gained a new
  // epoch. The decomposition depends only on positions — it is identical
  // with the cache disabled, so answers cannot depend on cache state.
  while (lo < hi) {
    std::size_t len = 1;
    while (lo % (len * 2) == 0 && len * 2 <= hi - lo) len *= 2;
    if (len == 1) {
      acc.merge(slice[lo]->tree);
    } else {
      acc.merge(fold_aligned(slice, lo, len, populate));
    }
    lo += len;
  }
}

std::vector<FlowDB::Group> FlowDB::select_groups(
    const std::vector<TimeInterval>& intervals,
    const std::vector<std::string>& locations) const {
  const auto wanted_time = [&](const TimeInterval& interval) {
    if (intervals.empty()) return true;
    return std::any_of(intervals.begin(), intervals.end(),
                       [&](const TimeInterval& w) { return w.overlaps(interval); });
  };
  const auto wanted_location = [&](const std::string& location) {
    if (locations.empty()) return true;
    return std::find(locations.begin(), locations.end(), location) !=
           locations.end();
  };

  // Select the matching entries, grouped by location (entries_ is sorted by
  // location, so each location is a contiguous index run — the "slice").
  // Groups keep slice-relative positions: the aligned block decomposition
  // depends only on where an epoch sits inside its location's slice, so
  // summaries arriving for *other* locations never perturb it.
  std::vector<Group> groups;
  for (std::size_t i = 0; i < entries_.size();) {
    std::size_t j = i;
    while (j < entries_.size() &&
           entries_[j].meta.location == entries_[i].meta.location) {
      ++j;
    }
    if (wanted_location(entries_[i].meta.location)) {
      Group group;
      group.slice.reserve(j - i);
      for (std::size_t k = i; k < j; ++k) group.slice.push_back(&entries_[k]);
      for (std::size_t k = i; k < j; ++k) {
        if (wanted_time(entries_[k].meta.interval)) group.positions.push_back(k - i);
      }
      if (!group.positions.empty()) groups.push_back(std::move(group));
    }
    i = j;
  }
  return groups;
}

FlowDB::ViewKey FlowDB::view_key_for(const std::vector<Group>& groups) {
  ViewKey view_key;
  view_key.words.push_back(kTagView);
  view_key.words.push_back(groups.size());
  for (const Group& group : groups) {
    view_key.words.push_back(group.positions.size());
    for (const std::size_t p : group.positions) {
      view_key.words.push_back(group.slice[p]->seq);
    }
  }
  return view_key;
}

flowtree::Flowtree FlowDB::merged(
    const std::vector<TimeInterval>& intervals,
    const std::vector<std::string>& locations) const {
  return merged_impl(intervals, locations, /*populate=*/true);
}

flowtree::MergedView FlowDB::merged_view_hint(
    const std::vector<TimeInterval>& intervals,
    const std::vector<std::string>& locations, CacheMode mode) const {
  return flowtree::MergedView(
      merged_impl(intervals, locations, mode == CacheMode::kPopulate));
}

PlanProbe FlowDB::plan_probe(const std::vector<TimeInterval>& intervals,
                             const std::vector<std::string>& locations) const {
  PlanProbe probe;
  probe.known = true;
  probe.versioned = true;

  const ReaderLock lock(entries_mu_);
  probe.version = next_seq_ - 1;
  const std::vector<Group> groups = select_groups(intervals, locations);
  probe.location_groups = groups.size();
  for (const Group& group : groups) probe.summary_count += group.positions.size();
  const ViewKey view_key = view_key_for(groups);
  {
    const MutexLock cache_lock(cache_mu_);
    probe.full_view_cached = view_cache_.byte_budget(cache_mu_) > 0 &&
                             view_cache_.contains(view_key, cache_mu_);
  }
  return probe;
}

flowtree::Flowtree FlowDB::merged_impl(
    const std::vector<TimeInterval>& intervals,
    const std::vector<std::string>& locations, bool populate) const {
  const ReaderLock lock(entries_mu_);

  const std::vector<Group> groups = select_groups(intervals, locations);

  // Full-view cache: repeating the exact same selection (the dashboard
  // pattern) is an O(1) copy-on-write handout.
  const ViewKey view_key = view_key_for(groups);
  {
    const MutexLock cache_lock(cache_mu_);
    if (view_cache_.byte_budget(cache_mu_) > 0) {
      if (const flowtree::Flowtree* hit = view_cache_.get(view_key, cache_mu_)) {
        flowtree::Flowtree copy = *hit;
        publish_cache_metrics();
        return copy;
      }
    }
  }

  // Stage 1 (shared location): merge each location's epochs over time along
  // the aligned block decomposition. Each location is folded by exactly one
  // task, with a deterministic structure, so the concurrent result is
  // identical to the serial one.
  std::vector<flowtree::Flowtree> per_location;
  per_location.reserve(groups.size());
  for (std::size_t g = 0; g < groups.size(); ++g) {
    per_location.emplace_back(tree_config_);
  }
  const auto fold_group = [&](std::size_t begin, std::size_t end) {
    for (std::size_t g = begin; g < end; ++g) {
      const Group& group = groups[g];
      // Maximal contiguous position runs fold via aligned blocks; gaps
      // (multi-interval selections skipping epochs) split the runs.
      std::size_t a = 0;
      while (a < group.positions.size()) {
        std::size_t b = a + 1;
        while (b < group.positions.size() &&
               group.positions[b] == group.positions[b - 1] + 1) {
          ++b;
        }
        fold_run(per_location[g], group.slice.data(), group.positions[a],
                 group.positions[a] + (b - a), populate);
        a = b;
      }
    }
  };
  if (pool_ != nullptr && groups.size() > 1) {
    pool_->parallel_for(groups.size(), fold_group);
  } else {
    fold_group(0, groups.size());
  }

  // Stage 2 (shared time): merge across locations, in location order.
  flowtree::Flowtree result(tree_config_);
  for (flowtree::Flowtree& tree : per_location) result.merge(tree);
  {
    const MutexLock cache_lock(cache_mu_);
    if (populate) {
      view_cache_.put(view_key, result, result.memory_bytes(), cache_mu_);
    }
    publish_cache_metrics();
  }
  return result;
}

std::size_t FlowDB::memory_bytes() const {
  const ReaderLock lock(entries_mu_);
  std::size_t total = 0;
  for (const Entry& entry : entries_) total += entry.tree.memory_bytes();
  return total;
}

}  // namespace megads::flowdb
