#include "flowdb/flowdb.hpp"

#include <algorithm>
#include <map>
#include <mutex>

#include "common/error.hpp"
#include "common/thread_pool.hpp"

namespace megads::flowdb {

FlowDB::FlowDB(flowtree::FlowtreeConfig tree_config) : tree_config_(tree_config) {}

FlowDB::FlowDB(FlowDB&& other) noexcept
    : tree_config_(other.tree_config_),
      entries_(std::move(other.entries_)),
      pool_(other.pool_) {}

FlowDB& FlowDB::operator=(FlowDB&& other) noexcept {
  if (this != &other) {
    tree_config_ = other.tree_config_;
    entries_ = std::move(other.entries_);
    pool_ = other.pool_;
  }
  return *this;
}

void FlowDB::add(flowtree::Flowtree tree, TimeInterval interval,
                 std::string location) {
  expects(tree.config().policy == tree_config_.policy &&
              tree.config().features == tree_config_.features,
          "FlowDB::add: summary's generalization policy/features do not match");
  expects(!interval.empty(), "FlowDB::add: empty interval");
  Entry entry{SummaryMeta{interval, std::move(location)}, std::move(tree)};
  const std::unique_lock lock(entries_mu_);
  const auto pos = std::upper_bound(
      entries_.begin(), entries_.end(), entry, [](const Entry& a, const Entry& b) {
        if (a.meta.location != b.meta.location) {
          return a.meta.location < b.meta.location;
        }
        return a.meta.interval.begin < b.meta.interval.begin;
      });
  entries_.insert(pos, std::move(entry));
}

std::size_t FlowDB::summary_count() const {
  const std::shared_lock lock(entries_mu_);
  return entries_.size();
}

void FlowDB::add_encoded(const std::vector<std::uint8_t>& bytes,
                         TimeInterval interval, std::string location) {
  add(flowtree::Flowtree::decode(bytes, tree_config_), interval,
      std::move(location));
}

std::vector<std::string> FlowDB::locations() const {
  const std::shared_lock lock(entries_mu_);
  std::vector<std::string> names;
  for (const Entry& entry : entries_) {
    if (names.empty() || names.back() != entry.meta.location) {
      names.push_back(entry.meta.location);
    }
  }
  return names;
}

std::optional<TimeInterval> FlowDB::coverage() const {
  const std::shared_lock lock(entries_mu_);
  if (entries_.empty()) return std::nullopt;
  TimeInterval total = entries_.front().meta.interval;
  for (const Entry& entry : entries_) total = total.span(entry.meta.interval);
  return total;
}

flowtree::Flowtree FlowDB::merged(
    const std::vector<TimeInterval>& intervals,
    const std::vector<std::string>& locations) const {
  const auto wanted_time = [&](const TimeInterval& interval) {
    if (intervals.empty()) return true;
    return std::any_of(intervals.begin(), intervals.end(),
                       [&](const TimeInterval& w) { return w.overlaps(interval); });
  };
  const auto wanted_location = [&](const std::string& location) {
    if (locations.empty()) return true;
    return std::find(locations.begin(), locations.end(), location) !=
           locations.end();
  };

  const std::shared_lock lock(entries_mu_);

  // Select the matching entries, grouped by location (entries_ is sorted by
  // location, so each group is a contiguous index run).
  std::vector<std::vector<const Entry*>> groups;
  for (const Entry& entry : entries_) {
    if (!wanted_time(entry.meta.interval) || !wanted_location(entry.meta.location)) {
      continue;
    }
    if (groups.empty() || groups.back().back()->meta.location != entry.meta.location) {
      groups.emplace_back();
    }
    groups.back().push_back(&entry);
  }

  // Stage 1 (shared location): merge each location's epochs over time.
  // Each location is folded by exactly one task, in epoch order, so the
  // concurrent result is identical to the serial one.
  std::vector<flowtree::Flowtree> per_location;
  per_location.reserve(groups.size());
  for (std::size_t g = 0; g < groups.size(); ++g) {
    per_location.emplace_back(tree_config_);
  }
  const auto fold_group = [&](std::size_t begin, std::size_t end) {
    for (std::size_t g = begin; g < end; ++g) {
      for (const Entry* entry : groups[g]) per_location[g].merge(entry->tree);
    }
  };
  if (pool_ != nullptr && groups.size() > 1) {
    pool_->parallel_for(groups.size(), fold_group);
  } else {
    fold_group(0, groups.size());
  }

  // Stage 2 (shared time): merge across locations, in location order.
  flowtree::Flowtree result(tree_config_);
  for (flowtree::Flowtree& tree : per_location) result.merge(tree);
  return result;
}

std::size_t FlowDB::memory_bytes() const {
  const std::shared_lock lock(entries_mu_);
  std::size_t total = 0;
  for (const Entry& entry : entries_) total += entry.tree.memory_bytes();
  return total;
}

}  // namespace megads::flowdb
