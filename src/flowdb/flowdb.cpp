#include "flowdb/flowdb.hpp"

#include <algorithm>
#include <map>

#include "common/error.hpp"

namespace megads::flowdb {

FlowDB::FlowDB(flowtree::FlowtreeConfig tree_config) : tree_config_(tree_config) {}

void FlowDB::add(flowtree::Flowtree tree, TimeInterval interval,
                 std::string location) {
  expects(tree.config().policy == tree_config_.policy &&
              tree.config().features == tree_config_.features,
          "FlowDB::add: summary's generalization policy/features do not match");
  expects(!interval.empty(), "FlowDB::add: empty interval");
  Entry entry{SummaryMeta{interval, std::move(location)}, std::move(tree)};
  const auto pos = std::upper_bound(
      entries_.begin(), entries_.end(), entry, [](const Entry& a, const Entry& b) {
        if (a.meta.location != b.meta.location) {
          return a.meta.location < b.meta.location;
        }
        return a.meta.interval.begin < b.meta.interval.begin;
      });
  entries_.insert(pos, std::move(entry));
}

void FlowDB::add_encoded(const std::vector<std::uint8_t>& bytes,
                         TimeInterval interval, std::string location) {
  add(flowtree::Flowtree::decode(bytes, tree_config_), interval,
      std::move(location));
}

std::vector<std::string> FlowDB::locations() const {
  std::vector<std::string> names;
  for (const Entry& entry : entries_) {
    if (names.empty() || names.back() != entry.meta.location) {
      names.push_back(entry.meta.location);
    }
  }
  return names;
}

std::optional<TimeInterval> FlowDB::coverage() const {
  if (entries_.empty()) return std::nullopt;
  TimeInterval total = entries_.front().meta.interval;
  for (const Entry& entry : entries_) total = total.span(entry.meta.interval);
  return total;
}

flowtree::Flowtree FlowDB::merged(
    const std::vector<TimeInterval>& intervals,
    const std::vector<std::string>& locations) const {
  const auto wanted_time = [&](const TimeInterval& interval) {
    if (intervals.empty()) return true;
    return std::any_of(intervals.begin(), intervals.end(),
                       [&](const TimeInterval& w) { return w.overlaps(interval); });
  };
  const auto wanted_location = [&](const std::string& location) {
    if (locations.empty()) return true;
    return std::find(locations.begin(), locations.end(), location) !=
           locations.end();
  };

  // Stage 1 (shared location): merge each location's epochs over time.
  std::map<std::string, flowtree::Flowtree> per_location;
  for (const Entry& entry : entries_) {
    if (!wanted_time(entry.meta.interval) || !wanted_location(entry.meta.location)) {
      continue;
    }
    auto [it, inserted] =
        per_location.try_emplace(entry.meta.location, tree_config_);
    it->second.merge(entry.tree);
  }

  // Stage 2 (shared time): merge across locations.
  flowtree::Flowtree result(tree_config_);
  for (auto& [location, tree] : per_location) result.merge(tree);
  return result;
}

std::size_t FlowDB::memory_bytes() const {
  std::size_t total = 0;
  for (const Entry& entry : entries_) total += entry.tree.memory_bytes();
  return total;
}

}  // namespace megads::flowdb
