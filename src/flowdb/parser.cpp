#include "flowdb/parser.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>

#include "common/error.hpp"
#include "flowdb/lexer.hpp"

namespace megads::flowdb {

const char* to_string(OperatorKind op) noexcept {
  switch (op) {
    case OperatorKind::kTopK: return "topk";
    case OperatorKind::kHHH: return "hhh";
    case OperatorKind::kAbove: return "above";
    case OperatorKind::kQuery: return "query";
    case OperatorKind::kDrilldown: return "drilldown";
    case OperatorKind::kDiff: return "diff";
  }
  return "?";
}

namespace {

/// Upper bound for count-style operator arguments (topk/diff k): keeps the
/// executor's double -> size_t casts in range and rejects absurd requests.
constexpr double kMaxK = 1e9;

std::string lower(std::string text) {
  std::transform(text.begin(), text.end(), text.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return text;
}

class Parser {
 public:
  explicit Parser(const std::string& input) : tokens_(tokenize(input)) {}

  Statement parse_statement() {
    bool explain = false;
    if (is_keyword(peek(), "explain")) {
      advance();
      explain = true;
    }
    expect_keyword("select");
    Statement statement = parse_operator();
    statement.explain = explain;
    expect_keyword("from");
    statement.ranges.push_back(parse_range());
    while (peek().kind == TokenKind::kComma) {
      advance();
      statement.ranges.push_back(parse_range());
    }
    if (is_keyword(peek(), "where")) {
      advance();
      parse_condition(statement);
      while (is_keyword(peek(), "and")) {
        advance();
        parse_condition(statement);
      }
    }
    if (peek().kind != TokenKind::kEnd) {
      fail("trailing input after statement");
    }
    return statement;
  }

 private:
  const Token& peek() const { return tokens_[pos_]; }
  /// The End sentinel is sticky: advancing past it would read off the token
  /// vector (found by fuzz_flowql on "select topk("), so it is returned
  /// without consuming — every caller then fails cleanly on its kind.
  const Token& advance() {
    const Token& token = tokens_[pos_];
    if (token.kind != TokenKind::kEnd) ++pos_;
    return token;
  }

  [[noreturn]] void fail(const std::string& message) const {
    throw ParseError("FlowQL: " + message + " at offset " +
                     std::to_string(peek().offset) +
                     (peek().text.empty() ? "" : " near '" + peek().text + "'"));
  }

  static bool is_keyword(const Token& token, const char* keyword) {
    return token.kind == TokenKind::kWord && lower(token.text) == keyword;
  }

  void expect_keyword(const char* keyword) {
    if (!is_keyword(peek(), keyword)) {
      fail(std::string("expected '") + keyword + "'");
    }
    advance();
  }

  double parse_paren_number() {
    if (peek().kind != TokenKind::kLParen) fail("expected '('");
    advance();
    const double value = parse_number(advance());
    if (peek().kind != TokenKind::kRParen) fail("expected ')'");
    advance();
    return value;
  }

  double parse_number(const Token& token) const {
    if (token.kind != TokenKind::kWord) fail("expected a number");
    double value = 0.0;
    const auto* begin = token.text.data();
    const auto* end = begin + token.text.size();
    const auto [ptr, ec] = std::from_chars(begin, end, value);
    // from_chars accepts "inf"/"nan" spellings; neither is a usable operator
    // argument (NaN slips through range checks like "k >= 1").
    if (ec != std::errc{} || ptr != end || !std::isfinite(value)) {
      fail("malformed number '" + token.text + "'");
    }
    return value;
  }

  Statement parse_operator() {
    Statement statement;
    const Token token = advance();
    const std::string name = lower(token.text);
    if (token.kind != TokenKind::kWord) fail("expected an operator");
    if (name == "topk" || name == "top-k" || name == "top_k") {
      statement.op = OperatorKind::kTopK;
      statement.argument = parse_paren_number();
      if (statement.argument < 1 || statement.argument > kMaxK) {
        fail("topk: k must be in [1, 1e9]");
      }
    } else if (name == "hhh") {
      statement.op = OperatorKind::kHHH;
      statement.argument = parse_paren_number();
      if (statement.argument <= 0.0 || statement.argument > 1.0) {
        fail("hhh: phi must be in (0, 1]");
      }
    } else if (name == "above") {
      statement.op = OperatorKind::kAbove;
      statement.argument = parse_paren_number();
    } else if (name == "query") {
      statement.op = OperatorKind::kQuery;
    } else if (name == "drilldown") {
      statement.op = OperatorKind::kDrilldown;
    } else if (name == "diff") {
      statement.op = OperatorKind::kDiff;
      statement.argument = 20.0;
      if (peek().kind == TokenKind::kLParen) {
        statement.argument = parse_paren_number();
        if (statement.argument < 1 || statement.argument > kMaxK) {
          fail("diff: k must be in [1, 1e9]");
        }
      }
    } else {
      fail("unknown operator '" + token.text + "'");
    }
    return statement;
  }

  /// "0s..60s" | "5m..10m" | "0..3600" (seconds by default).
  TimeInterval parse_range() {
    const Token token = advance();
    if (token.kind != TokenKind::kWord) fail("expected a time range");
    const std::size_t sep = token.text.find("..");
    if (sep == std::string::npos) {
      fail("time range must look like <begin>..<end>, got '" + token.text + "'");
    }
    const SimTime begin = parse_time(token.text.substr(0, sep));
    const SimTime end = parse_time(token.text.substr(sep + 2));
    if (end <= begin) fail("time range must have end > begin");
    return TimeInterval{begin, end};
  }

  SimTime parse_time(const std::string& text) const {
    if (text.empty()) fail("empty time literal");
    SimDuration unit = kSecond;
    std::string digits = text;
    switch (std::tolower(static_cast<unsigned char>(text.back()))) {
      case 's': unit = kSecond; digits.pop_back(); break;
      case 'm': unit = kMinute; digits.pop_back(); break;
      case 'h': unit = kHour; digits.pop_back(); break;
      case 'd': unit = kDay; digits.pop_back(); break;
      default: break;
    }
    double value = 0.0;
    const auto* begin = digits.data();
    const auto* end = begin + digits.size();
    const auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc{} || ptr != end || value < 0 || !std::isfinite(value)) {
      fail("malformed time literal '" + text + "'");
    }
    // Guard the double -> SimTime cast: out-of-range conversions (e.g.
    // "0..1e300", found by fuzz_flowql under UBSan) are undefined behavior.
    const double scaled = value * static_cast<double>(unit);
    if (scaled >= 9.2e18) fail("time literal out of range '" + text + "'");
    return static_cast<SimTime>(scaled);
  }

  void parse_condition(Statement& statement) {
    const Token field_token = advance();
    if (field_token.kind != TokenKind::kWord) fail("expected a condition field");
    const std::string field = lower(field_token.text);
    if (peek().kind != TokenKind::kEquals) fail("expected '='");
    advance();
    const Token value = advance();

    if (field == "location") {
      if (value.kind != TokenKind::kString) {
        fail("location must be a quoted string");
      }
      statement.locations.push_back(value.text);
      return;
    }
    if (value.kind != TokenKind::kWord) fail("expected a value");
    // Integer condition values must fit their wire field; a silent wrap
    // (dst_port = 65616 matching port 80) would answer the wrong query.
    const auto bounded = [&](double max) {
      const double number = parse_number(value);
      if (number < 0 || number > max || number != std::floor(number)) {
        fail("condition value out of range '" + value.text + "'");
      }
      return number;
    };
    if (field == "src") {
      statement.restriction.with_src(flow::Prefix::parse(value.text));
    } else if (field == "dst") {
      statement.restriction.with_dst(flow::Prefix::parse(value.text));
    } else if (field == "src_port") {
      statement.restriction.with_src_port(static_cast<std::uint16_t>(bounded(65535)));
    } else if (field == "dst_port") {
      statement.restriction.with_dst_port(static_cast<std::uint16_t>(bounded(65535)));
    } else if (field == "proto") {
      statement.restriction.with_proto(static_cast<std::uint8_t>(bounded(255)));
    } else {
      fail("unknown condition field '" + field_token.text + "'");
    }
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

Statement parse(const std::string& input) {
  Parser parser(input);
  Statement statement = parser.parse_statement();
  if (statement.op == OperatorKind::kDiff && statement.ranges.size() != 2) {
    throw ParseError("FlowQL: diff requires exactly two FROM ranges");
  }
  return statement;
}

}  // namespace megads::flowdb
