#include "flowdb/lexer.hpp"

#include <cctype>

#include "common/error.hpp"

namespace megads::flowdb {

namespace {

bool is_word_char(char c) noexcept {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '.' ||
         c == '/' || c == ':' || c == '_' || c == '-';
}

}  // namespace

std::vector<Token> tokenize(const std::string& input) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  while (i < input.size()) {
    const char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    if (c == '(') {
      tokens.push_back({TokenKind::kLParen, "(", i++});
      continue;
    }
    if (c == ')') {
      tokens.push_back({TokenKind::kRParen, ")", i++});
      continue;
    }
    if (c == ',') {
      tokens.push_back({TokenKind::kComma, ",", i++});
      continue;
    }
    if (c == '=') {
      tokens.push_back({TokenKind::kEquals, "=", i++});
      continue;
    }
    if (c == '\'') {
      const std::size_t start = i++;
      std::string text;
      while (i < input.size() && input[i] != '\'') text += input[i++];
      if (i >= input.size()) {
        throw ParseError("FlowQL: unterminated string literal at offset " +
                         std::to_string(start));
      }
      ++i;  // closing quote
      tokens.push_back({TokenKind::kString, std::move(text), start});
      continue;
    }
    if (is_word_char(c)) {
      const std::size_t start = i;
      std::string text;
      while (i < input.size() && is_word_char(input[i])) text += input[i++];
      tokens.push_back({TokenKind::kWord, std::move(text), start});
      continue;
    }
    throw ParseError("FlowQL: unexpected character '" + std::string(1, c) +
                     "' at offset " + std::to_string(i));
  }
  tokens.push_back({TokenKind::kEnd, "", input.size()});
  return tokens;
}

}  // namespace megads::flowdb
