// FlowQL abstract syntax (Section VI): "the user chooses his operator via a
// SELECT clause, one or multiple time periods via a FROM clause, and the
// feature set via a WHERE clause."
//
// Grammar (keywords case-insensitive):
//
//   statement := [EXPLAIN] SELECT operator FROM ranges
//                [WHERE condition (AND condition)*]
//   operator  := TOPK '(' number ')'
//              | HHH '(' number ')'            -- phi in (0, 1]
//              | ABOVE '(' number ')'
//              | QUERY
//              | DRILLDOWN
//              | DIFF ['(' number ')']         -- requires exactly two ranges
//   ranges    := range (',' range)*
//   range     := time '..' time
//   time      := number ['s' | 'm' | 'h' | 'd']   -- default: seconds
//   condition := LOCATION '=' string
//              | SRC '=' prefix  | DST '=' prefix
//              | SRC_PORT '=' number | DST_PORT '=' number | PROTO '=' number
//
// Examples:
//   SELECT topk(10) FROM 0s..60s WHERE location = 'router-0'
//   SELECT hhh(0.05) FROM 0m..5m, 10m..15m
//   SELECT query FROM 0s..3600s WHERE src = 10.1.0.0/16 AND dst_port = 443
//   SELECT diff(20) FROM 0m..5m, 5m..10m WHERE location = 'router-1'
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "flow/flowkey.hpp"

namespace megads::flowdb {

enum class OperatorKind { kTopK, kHHH, kAbove, kQuery, kDrilldown, kDiff };

[[nodiscard]] const char* to_string(OperatorKind op) noexcept;

struct Statement {
  OperatorKind op = OperatorKind::kTopK;
  /// k (top-k, diff), phi (hhh), or x (above).
  double argument = 10.0;
  /// FROM clause; empty = the database's full coverage.
  std::vector<TimeInterval> ranges;
  /// WHERE location = '...' conditions (repeatable; empty = all locations).
  std::vector<std::string> locations;
  /// WHERE feature conditions folded into one generalized key; results are
  /// restricted to flows this key generalizes.
  flow::FlowKey restriction;
  /// EXPLAIN prefix: render the plan (cost, cache access, fan-out) instead
  /// of executing. Only run_flowql() and the planner honour it; execute()
  /// ignores it and runs the inner statement.
  bool explain = false;
};

}  // namespace megads::flowdb
