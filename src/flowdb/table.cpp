#include "flowdb/table.hpp"

#include <algorithm>

namespace megads::flowdb {

std::string Table::to_string() const {
  std::vector<std::size_t> widths(columns.size(), 0);
  for (std::size_t c = 0; c < columns.size(); ++c) widths[c] = columns[c].size();
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  const auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line;
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      line += cell;
      line.append(widths[c] - cell.size() + 2, ' ');
    }
    while (!line.empty() && line.back() == ' ') line.pop_back();
    line += '\n';
    return line;
  };

  std::string out = render_row(columns);
  std::size_t rule = 0;
  for (const std::size_t w : widths) rule += w + 2;
  out.append(rule > 2 ? rule - 2 : rule, '-');
  out += '\n';
  for (const auto& row : rows) out += render_row(row);
  return out;
}

}  // namespace megads::flowdb
