// FlowQL recursive-descent parser (grammar in ast.hpp).
#pragma once

#include <string>

#include "flowdb/ast.hpp"

namespace megads::flowdb {

/// Parse one FlowQL statement; throws ParseError with a position-annotated
/// message on malformed input.
[[nodiscard]] Statement parse(const std::string& input);

}  // namespace megads::flowdb
