// FlowDB (Section VI): "takes flow summaries as input, stores, and indexes
// them while using them to answer FlowQL queries."
//
// Summaries are Flowtrees tagged with the time interval and the location
// they cover. Retrieval merges the relevant summaries respecting Table II's
// Merge precondition ("requires either shared time or location"): per
// location, summaries of different epochs are merged first (shared
// location); the per-location trees — now covering the same requested span —
// are then merged across locations (shared time).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "flowtree/flowtree.hpp"

namespace megads::flowdb {

struct SummaryMeta {
  TimeInterval interval;
  std::string location;
};

class FlowDB {
 public:
  explicit FlowDB(flowtree::FlowtreeConfig tree_config = {});

  /// Index one exported summary. Summaries must share the database's
  /// generalization policy and feature set.
  void add(flowtree::Flowtree tree, TimeInterval interval, std::string location);

  /// Decode and index a wire-format summary (arrow 3/4 of Fig. 5).
  void add_encoded(const std::vector<std::uint8_t>& bytes, TimeInterval interval,
                   std::string location);

  [[nodiscard]] std::size_t summary_count() const noexcept { return entries_.size(); }
  [[nodiscard]] std::vector<std::string> locations() const;
  /// Smallest interval covering all indexed summaries (nullopt when empty).
  [[nodiscard]] std::optional<TimeInterval> coverage() const;

  /// All summaries overlapping `interval` (any location when `locations` is
  /// empty), merged per the Table II discipline described above.
  [[nodiscard]] flowtree::Flowtree merged(
      const std::vector<TimeInterval>& intervals,
      const std::vector<std::string>& locations) const;

  [[nodiscard]] const flowtree::FlowtreeConfig& tree_config() const noexcept {
    return tree_config_;
  }
  [[nodiscard]] std::size_t memory_bytes() const;

 private:
  struct Entry {
    SummaryMeta meta;
    flowtree::Flowtree tree;
  };

  flowtree::FlowtreeConfig tree_config_;
  std::vector<Entry> entries_;  // sorted by (location, interval.begin)
};

}  // namespace megads::flowdb
