// FlowDB (Section VI): "takes flow summaries as input, stores, and indexes
// them while using them to answer FlowQL queries."
//
// Summaries are Flowtrees tagged with the time interval and the location
// they cover. Retrieval merges the relevant summaries respecting Table II's
// Merge precondition ("requires either shared time or location"): per
// location, summaries of different epochs are merged first (shared
// location); the per-location trees — now covering the same requested span —
// are then merged across locations (shared time).
//
// Merged views are cached. Indexed summaries are immutable, so every cache
// entry is content-addressed by the sequence numbers of the summaries it
// folds — no epoch counters to invalidate: adding a summary changes which
// sequences a query selects, which changes the key. Two tiers share one
// LRU + byte budget:
//   - full views: the exact (intervals, locations) selection, so repeating a
//     dashboard query is an O(1) copy-on-write handout;
//   - aligned sub-folds: stage 1 folds each location's run of epochs along a
//     fixed power-of-two block decomposition (by position in the location's
//     slice), and each block of >= 2 summaries is cached — a sliding window
//     re-merges only the blocks containing new epochs. The decomposition is
//     the SAME with caching off (lookups simply never hit), so cached and
//     uncached answers are identical by construction.
// add_encoded() additionally memoizes decoded wire summaries (decode-once):
// re-registering the same exported bytes hands out a copy-on-write Flowtree
// instead of re-parsing.
//
// Concurrency: one writer (`add` / `add_encoded`) and any number of readers
// may run simultaneously — the summary index is guarded by a shared_mutex
// (exclusive for add, shared for every read); the caches by their own plain
// mutex (readers mutate the LRU). With a ThreadPool attached, `merged()`
// runs its per-location stage-1 folds concurrently; the result is identical
// to the serial fold because each location's epochs are still folded by a
// single task, in index order.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/lru_cache.hpp"
#include "common/metrics.hpp"
#include "common/mutex.hpp"
#include "flowdb/source.hpp"
#include "flowtree/flowtree.hpp"

namespace megads {
class ThreadPool;
}

namespace megads::flowdb {

struct SummaryMeta {
  TimeInterval interval;
  std::string location;
};

class FlowDB : public SummarySource {
 public:
  explicit FlowDB(flowtree::FlowtreeConfig tree_config = {});

  // Movable (the mutexes are freshly constructed; moving while readers or the
  // writer are active is undefined, as for any container — which is why the
  // move functions opt out of the capability analysis).
  FlowDB(FlowDB&& other) noexcept MEGADS_NO_THREAD_SAFETY_ANALYSIS;
  FlowDB& operator=(FlowDB&& other) noexcept MEGADS_NO_THREAD_SAFETY_ANALYSIS;
  FlowDB(const FlowDB&) = delete;
  FlowDB& operator=(const FlowDB&) = delete;

  /// Index one exported summary. Summaries must share the database's
  /// generalization policy and feature set.
  void add(flowtree::Flowtree tree, TimeInterval interval, std::string location);

  /// Decode and index a wire-format summary (arrow 3/4 of Fig. 5). Identical
  /// byte strings decode once (memoized copy-on-write handout).
  void add_encoded(const std::vector<std::uint8_t>& bytes, TimeInterval interval,
                   std::string location);

  /// Attach a pool: merged() fans its per-location folds across it. The pool
  /// must outlive the database (pass nullptr to detach).
  void set_thread_pool(ThreadPool* pool) noexcept { pool_ = pool; }
  [[nodiscard]] ThreadPool* thread_pool() const noexcept { return pool_; }
  [[nodiscard]] ThreadPool* merge_pool() const noexcept override {
    return pool_;
  }

  [[nodiscard]] std::size_t summary_count() const;
  [[nodiscard]] std::vector<std::string> locations() const;
  /// Locations (sorted, deduplicated) holding at least one summary matching
  /// the selection — the partition servers' scatter-gather manifest: it
  /// distinguishes "no summaries selected" from "selected summaries folding
  /// to zero mass", which a merged() result alone cannot.
  [[nodiscard]] std::vector<std::string> matching_locations(
      const std::vector<TimeInterval>& intervals,
      const std::vector<std::string>& locations) const;
  /// Smallest interval covering all indexed summaries (nullopt when empty).
  [[nodiscard]] std::optional<TimeInterval> coverage() const;

  /// Entry-log version: bumped by every add()/add_encoded(). External caches
  /// key on it; the internal view cache is content-addressed instead.
  [[nodiscard]] std::uint64_t version() const;

  /// Byte budget of the merged-view + sub-fold cache (LRU eviction; 0
  /// disables and clears). Default: 32 MiB.
  void set_view_cache_budget(std::size_t bytes);
  [[nodiscard]] std::size_t view_cache_budget() const;

  /// Report cache behaviour into `registry` under "flowdb.": view_cache_hits
  /// / view_cache_misses / view_cache_evictions / decode_hits / decode_misses
  /// counters and view_cache_bytes / view_cache_hit_ratio gauges. The
  /// registry must outlive the database.
  void attach_metrics(metrics::MetricsRegistry& registry);

  /// All summaries overlapping `interval` (any location when `locations` is
  /// empty), merged per the Table II discipline described above.
  [[nodiscard]] flowtree::Flowtree merged(
      const std::vector<TimeInterval>& intervals,
      const std::vector<std::string>& locations) const override;

  /// merged() with the planner's cache policy: kPopulate is merged() exactly;
  /// kReadOnly runs the identical decomposition but inserts nothing into the
  /// view/block cache (warm entries are still read) — scan resistance for
  /// one-off selections. Answers are byte-identical either way.
  [[nodiscard]] flowtree::MergedView merged_view_hint(
      const std::vector<TimeInterval>& intervals,
      const std::vector<std::string>& locations,
      CacheMode mode) const override;

  /// Planner probe: content version (sharing key), selection size, and
  /// whether the exact selection is already materialized in the view cache.
  [[nodiscard]] PlanProbe plan_probe(
      const std::vector<TimeInterval>& intervals,
      const std::vector<std::string>& locations) const override;

  [[nodiscard]] const flowtree::FlowtreeConfig& tree_config() const noexcept {
    return tree_config_;
  }
  [[nodiscard]] std::size_t memory_bytes() const;

 private:
  struct Entry {
    SummaryMeta meta;
    flowtree::Flowtree tree;
    std::uint64_t seq = 0;  ///< unique, assigned at add(); entries are immutable
  };

  /// Content-addressed cache key: a tag (view / block) followed by the
  /// sequence numbers of the summaries the cached tree folds, with explicit
  /// group lengths for view keys so structures cannot collide.
  struct ViewKey {
    std::vector<std::uint64_t> words;
    friend bool operator==(const ViewKey&, const ViewKey&) = default;
  };
  struct ViewKeyHash {
    std::size_t operator()(const ViewKey& key) const noexcept;
  };

  /// One location's contiguous entry run with the selected positions inside
  /// it — the unit both merged() and plan_probe() select on. Pointers into
  /// entries_ stay valid only while the shared entries lock is held.
  struct Group {
    std::vector<const Entry*> slice;     ///< the location's full run
    std::vector<std::size_t> positions;  ///< selected indices into `slice`
  };
  /// Matching entries grouped by location (see merged() for the selection
  /// semantics); shared by merged() and plan_probe() so the planner probes
  /// exactly what execution will fold.
  [[nodiscard]] std::vector<Group> select_groups(
      const std::vector<TimeInterval>& intervals,
      const std::vector<std::string>& locations) const
      MEGADS_REQUIRES_SHARED(entries_mu_);
  /// The full-view content-addressed key for a selection.
  [[nodiscard]] static ViewKey view_key_for(const std::vector<Group>& groups);
  /// merged() body with an explicit cache policy (populate = insert fold
  /// products; reads happen in both modes).
  [[nodiscard]] flowtree::Flowtree merged_impl(
      const std::vector<TimeInterval>& intervals,
      const std::vector<std::string>& locations, bool populate) const;

  /// Fold one location's contiguous position run [lo, hi) (slice-relative)
  /// into `acc` along the aligned power-of-two decomposition, consulting the
  /// block cache for every block of >= 2 entries. `slice` spans the whole
  /// location. The slice pointers stay valid because merged() holds the
  /// shared entries lock for the whole fan-out — pool workers running these
  /// folds do NOT hold it themselves, which is why the functions carry no
  /// REQUIRES annotation and touch entries only through the slice.
  void fold_run(flowtree::Flowtree& acc, const Entry* const* slice,
                std::size_t lo, std::size_t hi, bool populate) const;
  /// Fold the aligned block [at, at + len): cache lookup, else recurse.
  [[nodiscard]] flowtree::Flowtree fold_aligned(const Entry* const* slice,
                                                std::size_t at,
                                                std::size_t len,
                                                bool populate) const;
  void publish_cache_metrics() const MEGADS_REQUIRES(cache_mu_);

  flowtree::FlowtreeConfig tree_config_;
  /// Exclusive for add(), shared for every reader — FlowQL queries may run
  /// concurrently with summary arrivals.
  mutable SharedMutex entries_mu_{lockrank::kFlowDbEntries, "flowdb.entries"};
  std::vector<Entry> entries_
      MEGADS_GUARDED_BY(entries_mu_);  // sorted by (location, interval.begin)
  std::uint64_t next_seq_ MEGADS_GUARDED_BY(entries_mu_) = 1;
  ThreadPool* pool_ = nullptr;

  /// Merged-view/sub-fold cache and the decode memo. Guarded by cache_mu_
  /// (readers mutate the LRU order, so a shared lock is not enough). Cached
  /// trees share copy-on-write state with handed-out results — a hit is an
  /// O(1) copy while holding the lock. Always nested inside the shared
  /// entries lock (never the other way) — the ACQUIRED_AFTER edge makes the
  /// order machine-checked.
  mutable Mutex cache_mu_ MEGADS_ACQUIRED_AFTER(entries_mu_){
      lockrank::kFlowDbCache, "flowdb.cache"};
  mutable LruCache<ViewKey, flowtree::Flowtree, ViewKeyHash> view_cache_
      MEGADS_GUARDED_BY(cache_mu_){32u << 20};
  struct DecodedBytes {
    std::vector<std::uint8_t> bytes;  ///< exact-match guard against hash collision
    flowtree::Flowtree tree;
  };
  mutable LruCache<std::uint64_t, DecodedBytes> decode_memo_
      MEGADS_GUARDED_BY(cache_mu_){4u << 20};
  mutable std::uint64_t decode_hits_ MEGADS_GUARDED_BY(cache_mu_) = 0;
  mutable std::uint64_t decode_misses_ MEGADS_GUARDED_BY(cache_mu_) = 0;
  /// Counter tallies already pushed to the registry (publish adds deltas).
  mutable std::uint64_t published_hits_ MEGADS_GUARDED_BY(cache_mu_) = 0;
  mutable std::uint64_t published_misses_ MEGADS_GUARDED_BY(cache_mu_) = 0;
  mutable std::uint64_t published_evictions_ MEGADS_GUARDED_BY(cache_mu_) = 0;
  mutable std::uint64_t published_decode_hits_ MEGADS_GUARDED_BY(cache_mu_) = 0;
  mutable std::uint64_t published_decode_misses_ MEGADS_GUARDED_BY(cache_mu_) =
      0;

  metrics::Counter* metric_hits_ MEGADS_GUARDED_BY(cache_mu_) = nullptr;
  metrics::Counter* metric_misses_ MEGADS_GUARDED_BY(cache_mu_) = nullptr;
  metrics::Counter* metric_evictions_ MEGADS_GUARDED_BY(cache_mu_) = nullptr;
  metrics::Counter* metric_decode_hits_ MEGADS_GUARDED_BY(cache_mu_) = nullptr;
  metrics::Counter* metric_decode_misses_ MEGADS_GUARDED_BY(cache_mu_) =
      nullptr;
  metrics::Gauge* metric_bytes_ MEGADS_GUARDED_BY(cache_mu_) = nullptr;
  metrics::Gauge* metric_hit_ratio_ MEGADS_GUARDED_BY(cache_mu_) = nullptr;
};

}  // namespace megads::flowdb
