// FlowDB (Section VI): "takes flow summaries as input, stores, and indexes
// them while using them to answer FlowQL queries."
//
// Summaries are Flowtrees tagged with the time interval and the location
// they cover. Retrieval merges the relevant summaries respecting Table II's
// Merge precondition ("requires either shared time or location"): per
// location, summaries of different epochs are merged first (shared
// location); the per-location trees — now covering the same requested span —
// are then merged across locations (shared time).
// Concurrency: one writer (`add` / `add_encoded`) and any number of readers
// may run simultaneously — the summary index is guarded by a shared_mutex
// (exclusive for add, shared for every read). With a ThreadPool attached,
// `merged()` runs its per-location stage-1 folds concurrently; the result is
// identical to the serial fold because each location's epochs are still
// merged by a single task, in index order.
#pragma once

#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "flowtree/flowtree.hpp"

namespace megads {
class ThreadPool;
}

namespace megads::flowdb {

struct SummaryMeta {
  TimeInterval interval;
  std::string location;
};

class FlowDB {
 public:
  explicit FlowDB(flowtree::FlowtreeConfig tree_config = {});

  // Movable (the mutex is freshly constructed; moving while readers or the
  // writer are active is undefined, as for any container).
  FlowDB(FlowDB&& other) noexcept;
  FlowDB& operator=(FlowDB&& other) noexcept;
  FlowDB(const FlowDB&) = delete;
  FlowDB& operator=(const FlowDB&) = delete;

  /// Index one exported summary. Summaries must share the database's
  /// generalization policy and feature set.
  void add(flowtree::Flowtree tree, TimeInterval interval, std::string location);

  /// Decode and index a wire-format summary (arrow 3/4 of Fig. 5).
  void add_encoded(const std::vector<std::uint8_t>& bytes, TimeInterval interval,
                   std::string location);

  /// Attach a pool: merged() fans its per-location folds across it. The pool
  /// must outlive the database (pass nullptr to detach).
  void set_thread_pool(ThreadPool* pool) noexcept { pool_ = pool; }
  [[nodiscard]] ThreadPool* thread_pool() const noexcept { return pool_; }

  [[nodiscard]] std::size_t summary_count() const;
  [[nodiscard]] std::vector<std::string> locations() const;
  /// Smallest interval covering all indexed summaries (nullopt when empty).
  [[nodiscard]] std::optional<TimeInterval> coverage() const;

  /// All summaries overlapping `interval` (any location when `locations` is
  /// empty), merged per the Table II discipline described above.
  [[nodiscard]] flowtree::Flowtree merged(
      const std::vector<TimeInterval>& intervals,
      const std::vector<std::string>& locations) const;

  [[nodiscard]] const flowtree::FlowtreeConfig& tree_config() const noexcept {
    return tree_config_;
  }
  [[nodiscard]] std::size_t memory_bytes() const;

 private:
  struct Entry {
    SummaryMeta meta;
    flowtree::Flowtree tree;
  };

  flowtree::FlowtreeConfig tree_config_;
  /// Exclusive for add(), shared for every reader — FlowQL queries may run
  /// concurrently with summary arrivals.
  mutable std::shared_mutex entries_mu_;
  std::vector<Entry> entries_;  // sorted by (location, interval.begin)
  ThreadPool* pool_ = nullptr;
};

}  // namespace megads::flowdb
