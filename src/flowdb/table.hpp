// Tabular query results: what FlowQL hands back to applications and shells.
#pragma once

#include <string>
#include <vector>

namespace megads::flowdb {

struct Table {
  std::vector<std::string> columns;
  std::vector<std::vector<std::string>> rows;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows.size(); }
  [[nodiscard]] bool empty() const noexcept { return rows.empty(); }

  /// Fixed-width ASCII rendering with a header rule.
  [[nodiscard]] std::string to_string() const;
};

}  // namespace megads::flowdb
