#include "flowdb/executor.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <future>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "flowdb/parser.hpp"
#include "flowdb/plan/planner.hpp"
#include "primitives/item.hpp"

namespace megads::flowdb {

namespace {

using flowtree::KeyScore;

std::string format_score(double score) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", score);
  return buf;
}

Table render(const std::vector<KeyScore>& rows) {
  Table table;
  table.columns = {"rank", "flow", "score"};
  std::size_t rank = 1;
  for (const KeyScore& row : rows) {
    table.rows.push_back(
        {std::to_string(rank++), row.key.to_string(), format_score(row.score)});
  }
  return table;
}

/// Rows restricted to flows the statement's WHERE key generalizes.
std::vector<KeyScore> restricted_entries(const flowtree::MergedView& view,
                                         const flow::FlowKey& restriction) {
  std::vector<KeyScore> rows = view.entries();
  std::erase_if(rows, [&](const KeyScore& row) {
    return row.score == 0.0 || !restriction.generalizes(row.key);
  });
  std::sort(rows.begin(), rows.end(), primitives::score_before);
  return rows;
}

}  // namespace

Table execute_diff(const Statement& statement, flowtree::Flowtree a,
                   const flowtree::Flowtree& b) {
  const bool restricted = !statement.restriction.is_root();
  a.diff(b);
  std::vector<KeyScore> rows =
      restricted
          ? restricted_entries(flowtree::MergedView(a), statement.restriction)
          : a.entries();
  std::erase_if(rows, [](const KeyScore& row) { return row.score == 0.0; });
  std::sort(rows.begin(), rows.end(), [](const KeyScore& x, const KeyScore& y) {
    if (std::fabs(x.score) != std::fabs(y.score))
      return std::fabs(x.score) > std::fabs(y.score);
    if (x.score != y.score) return x.score > y.score;
    return x.key < y.key;
  });
  const auto k = static_cast<std::size_t>(statement.argument);
  if (rows.size() > k) rows.resize(k);
  return render(rows);
}

Table execute(const Statement& statement, const SummarySource& source) {
  if (statement.op == OperatorKind::kDiff) {
    expects(statement.ranges.size() == 2, "FlowQL diff: exactly two ranges");
    // The two sides of a diff are independent merges — run the second on the
    // source's pool while this thread builds the first.
    std::future<flowtree::Flowtree> b_future;
    if (ThreadPool* pool = source.merge_pool(); pool != nullptr) {
      b_future = pool->submit([&source, &statement] {
        return source.merged({statement.ranges[1]}, statement.locations);
      });
    }
    flowtree::Flowtree a =
        source.merged({statement.ranges[0]}, statement.locations);
    const flowtree::Flowtree b =
        b_future.valid()
            ? b_future.get()
            : source.merged({statement.ranges[1]}, statement.locations);
    return execute_diff(statement, std::move(a), b);
  }

  // merged_view() serves repeated selections from the view cache (an O(1)
  // copy-on-write handout) and — on a partitioned coordinator whose gather
  // produced a single flat partial — hands the wire bytes out zero-copy, so
  // every read below runs in place without materializing a node pool.
  return execute_on_view(
      statement, source.merged_view(statement.ranges, statement.locations));
}

Table execute_on_view(const Statement& statement,
                      const flowtree::MergedView& tree) {
  const bool restricted = !statement.restriction.is_root();

  switch (statement.op) {
    case OperatorKind::kQuery: {
      Table table;
      table.columns = {"flow", "score"};
      table.rows.push_back({statement.restriction.to_string(),
                            format_score(tree.query(statement.restriction))});
      return table;
    }
    case OperatorKind::kDrilldown:
      return render(tree.drilldown(statement.restriction));
    case OperatorKind::kTopK: {
      const auto k = static_cast<std::size_t>(statement.argument);
      if (!restricted) return render(tree.top_k(k));
      std::vector<KeyScore> rows = restricted_entries(tree, statement.restriction);
      if (rows.size() > k) rows.resize(k);
      return render(rows);
    }
    case OperatorKind::kAbove: {
      if (!restricted) return render(tree.above(statement.argument));
      std::vector<KeyScore> rows = restricted_entries(tree, statement.restriction);
      std::erase_if(rows, [&](const KeyScore& row) {
        return row.score < statement.argument;
      });
      return render(rows);
    }
    case OperatorKind::kHHH: {
      std::vector<KeyScore> rows = tree.hhh(statement.argument);
      if (restricted) {
        std::erase_if(rows, [&](const KeyScore& row) {
          return !statement.restriction.generalizes(row.key);
        });
      }
      return render(rows);
    }
    case OperatorKind::kDiff:
      break;  // handled by execute_diff()
  }
  throw Error("FlowQL: unreachable operator");
}

Table run_flowql(const std::string& statement, const SummarySource& source) {
  const Statement parsed = parse(statement);
  if (parsed.explain) {
    // EXPLAIN renders the plan instead of executing. A transient planner is
    // enough: the plan table depends only on the statement, the source probe,
    // and default cost inputs, so it is deterministic for a given source
    // state. Long-lived planners (the serving tier) keep their own instance.
    plan::QueryPlanner planner;
    return planner.run(parsed, source);
  }
  return execute(parsed, source);
}

}  // namespace megads::flowdb
