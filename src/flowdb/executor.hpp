// FlowQL executor: runs a parsed Statement against a SummarySource and
// renders a Table. Together with the parser this is the "FlowQL API" of
// Fig. 5 (arrow 5). The source may be a local FlowDB or the partitioned
// Coordinator — the executor cannot tell the difference, which is the
// distribution-transparency contract the equivalence suites pin down.
#pragma once

#include <string>

#include "flowdb/ast.hpp"
#include "flowdb/source.hpp"
#include "flowdb/table.hpp"

namespace megads::flowdb {

/// Execute a parsed statement.
[[nodiscard]] Table execute(const Statement& statement,
                            const SummarySource& source);

/// Parse + execute in one step (the application-facing entry point).
[[nodiscard]] Table run_flowql(const std::string& statement,
                               const SummarySource& source);

}  // namespace megads::flowdb
