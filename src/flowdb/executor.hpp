// FlowQL executor: runs a parsed Statement against a SummarySource and
// renders a Table. Together with the parser this is the "FlowQL API" of
// Fig. 5 (arrow 5). The source may be a local FlowDB or the partitioned
// Coordinator — the executor cannot tell the difference, which is the
// distribution-transparency contract the equivalence suites pin down.
#pragma once

#include <string>

#include "flowdb/ast.hpp"
#include "flowdb/source.hpp"
#include "flowdb/table.hpp"

namespace megads::flowdb {

/// Execute a parsed statement. Ignores `statement.explain` — rendering a
/// plan requires a planner (plan/planner.hpp); run_flowql routes EXPLAIN
/// statements there.
[[nodiscard]] Table execute(const Statement& statement,
                            const SummarySource& source);

/// Run a non-diff operator against an already-merged selection. This is the
/// single rendering path for both the naive executor and the planner, which
/// is what makes planned results byte-identical by construction: the planner
/// only chooses how the operand view is produced, never how it is read.
[[nodiscard]] Table execute_on_view(const Statement& statement,
                                    const flowtree::MergedView& view);

/// Diff rendering over already-merged operands. `a` is consumed (the diff
/// subtracts in place). Shared between the naive executor and the planner
/// for the same reason as execute_on_view().
[[nodiscard]] Table execute_diff(const Statement& statement,
                                 flowtree::Flowtree a,
                                 const flowtree::Flowtree& b);

/// Parse + execute in one step (the application-facing entry point).
/// EXPLAIN statements are planned (not executed) and render the plan table.
[[nodiscard]] Table run_flowql(const std::string& statement,
                               const SummarySource& source);

}  // namespace megads::flowdb
