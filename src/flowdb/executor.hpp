// FlowQL executor: runs a parsed Statement against a FlowDB and renders a
// Table. Together with the parser this is the "FlowQL API" of Fig. 5
// (arrow 5).
#pragma once

#include <string>

#include "flowdb/ast.hpp"
#include "flowdb/flowdb.hpp"
#include "flowdb/table.hpp"

namespace megads::flowdb {

/// Execute a parsed statement.
[[nodiscard]] Table execute(const Statement& statement, const FlowDB& db);

/// Parse + execute in one step (the application-facing entry point).
[[nodiscard]] Table run_flowql(const std::string& statement, const FlowDB& db);

}  // namespace megads::flowdb
