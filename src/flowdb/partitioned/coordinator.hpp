// Coordinator — the query side of the partitioned FlowDB. Routes incoming
// summaries to partition servers per a Partitioner (batched kAddBatch
// envelopes) and executes every merged() selection as scatter-gather:
//
//   scatter  one kQueryRequest to each shard the Partitioner says may hold
//            matching summaries (pruned, not broadcast),
//   pump     Transport::run_until_idle() — a no-op on Loopback, the
//            simulator run on SimTransport,
//   gather   each shard's per-location stage-1 folds, then fold exactly as a
//            single FlowDB would: per location, partials merge in shard
//            order (shared location); the per-location trees then merge in
//            sorted location order (shared time, Table II).
//
// The Coordinator is a SummarySource, so the FlowQL executor runs unchanged
// on top of it — distribution transparency is the contract the equivalence
// suites in tests/flowdb/distributed_test.cpp pin down.
//
// With a ReplicaPlacer attached, every remote gather is also a ski-rental
// access: when the policy says "buy", the coordinator fetches the shard's
// raw records (kReplicaFetch/kReplicaData) and installs them in a local
// replica FlowDB; later selections serve that shard locally. The replica
// answers with the same per-location fold code, so answers are unchanged —
// only the traffic moves.
//
// Thread-safe over a thread-safe transport: concurrent merged() calls hold
// the internal lock only around bookkeeping, never across a send. A replica
// install never blocks writers: while a shard's records are being fetched,
// adds routed to that shard simply accumulate in its pending batch (nothing
// ships — take_batches skips installing shards), and the installer drains
// that backlog in a catch-up loop after the fetch lands, shipping each round
// to the owner before applying it to the still-private replica; the replica
// registers only once a drain round finds the backlog empty. Queries stay
// read-your-writes during the install: gather() snapshots the installing
// shard's pending records under the same lock that classifies the shard as
// remote and folds them as synthetic partials alongside the owner's
// response. To keep that sum exact, the snapshot pins the shard
// (scatter_pins_) until the owner's response is collected — the installer's
// drain waits out pins, so a snapshotted record can never also reach the
// owner before it answers (which would count it twice). Only the installer
// ever waits; add() and merged() never do.
//
// Stray traffic — malformed payloads, responses with unknown request ids or
// from unknown nodes, duplicate responses, request-type envelopes — is
// counted (dropped_messages()) and dropped, never thrown through the
// transport's delivery callback.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/mutex.hpp"
#include "flowdb/flowdb.hpp"
#include "flowdb/partitioned/envelope.hpp"
#include "flowdb/partitioned/partitioner.hpp"
#include "flowdb/plan/fanout.hpp"
#include "flowdb/source.hpp"
#include "flowtree/flatblock.hpp"
#include "net/transport.hpp"
#include "repl/placement.hpp"

namespace megads::flowdb::dist {

class Coordinator : public SummarySource {
 public:
  struct Options {
    /// Records per kAddBatch envelope; full batches ship immediately,
    /// partial ones on flush()/merged().
    std::size_t add_batch_size = 16;
    flowtree::FlowtreeConfig tree_config = {};
    /// Per-query scatter fan-out: intersect the partitioner's target set
    /// with the routed-record manifest (plan/fanout.hpp) so selective
    /// queries skip shards that provably hold nothing matching. Sound only
    /// while this coordinator is the shards' sole ingest route.
    bool planner_fanout = true;
    /// Set when the shards also receive records this coordinator never
    /// routed (another coordinator, direct server feeds): the manifest is
    /// then incomplete and fan-out falls back to the partitioner-global
    /// decision.
    bool assume_external_ingest = false;
  };

  /// Binds `node` on `transport`. `servers[i]` hosts partition i; transport
  /// and servers must outlive the coordinator.
  Coordinator(net::Transport& transport, NodeId node,
              std::unique_ptr<Partitioner> partitioner,
              std::vector<NodeId> servers, Options options);
  Coordinator(net::Transport& transport, NodeId node,
              std::unique_ptr<Partitioner> partitioner,
              std::vector<NodeId> servers)
      : Coordinator(transport, node, std::move(partitioner),
                    std::move(servers), Options()) {}
  ~Coordinator() override;

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Route one summary to its shard (encodes flat, batches, ships full
  /// batches). add_encoded accepts either wire format and normalizes to a
  /// flat block at ingest (validating hostile bytes on the caller's thread),
  /// so every record in the partitioned layer — kAddBatch, kReplicaData, the
  /// servers' raw logs — is flat and is carried verbatim from then on.
  void add(const flowtree::Flowtree& tree, TimeInterval interval,
           std::string location);
  void add_encoded(std::vector<std::uint8_t> bytes, TimeInterval interval,
                   std::string location);

  /// Ship every partial batch now. merged() flushes implicitly.
  void flush();

  /// Scatter-gather Table II Merge over the shards (see file comment).
  [[nodiscard]] flowtree::Flowtree merged(
      const std::vector<TimeInterval>& intervals,
      const std::vector<std::string>& locations) const override;

  /// Like merged(), but when the gather produces exactly one flat partial
  /// (single shard, single location — the common narrow-selection case) the
  /// response bytes are handed out as a zero-copy FlatView instead of being
  /// folded into a node pool: the wire payload IS the query operand.
  [[nodiscard]] flowtree::MergedView merged_view(
      const std::vector<TimeInterval>& intervals,
      const std::vector<std::string>& locations) const override;

  /// Attach ski-rental replica placement; the placer must outlive the
  /// coordinator. Shards replicate toward this querier when its policy says
  /// the shipped bytes have paid for the copy.
  void enable_replication(repl::ReplicaPlacer& placer) { placer_ = &placer; }

  [[nodiscard]] const Partitioner& partitioner() const noexcept {
    return *partitioner_;
  }
  [[nodiscard]] std::size_t partitions() const noexcept {
    return servers_.size();
  }
  [[nodiscard]] NodeId node() const noexcept { return node_; }

  // --- introspection for tests and benches ---
  /// Shards contacted remotely / served from a local replica, cumulative.
  [[nodiscard]] std::uint64_t remote_shard_queries() const;
  [[nodiscard]] std::uint64_t local_shard_queries() const;
  [[nodiscard]] std::size_t replicated_partitions() const;
  /// Stray / duplicate / malformed messages received and dropped.
  [[nodiscard]] std::uint64_t dropped_messages() const;
  /// Response partials that needed a legacy (non-flat) summary decode before
  /// folding — zero on the all-flat path; the bench's warm-path pin.
  [[nodiscard]] std::uint64_t response_decodes() const;
  /// Shards the per-query fan-out shed versus the partitioner-global target
  /// set, cumulative (the E15 pin: selective queries contact fewer shards).
  [[nodiscard]] std::uint64_t fanout_pruned_shards() const;

  /// Planner probe: content version (records routed through this
  /// coordinator), the per-query scatter decision, and the unloaded
  /// transfer cost of contacting the remote targets.
  [[nodiscard]] PlanProbe plan_probe(
      const std::vector<TimeInterval>& intervals,
      const std::vector<std::string>& locations) const override;

  /// Mirror the drop counter into `registry` as "net.dropped_coordinator"
  /// (cumulative; catches up on drops that preceded the attach). The registry
  /// must outlive the coordinator.
  void attach_metrics(metrics::MetricsRegistry& registry);

 private:
  struct Gather {
    std::size_t expected = 0;
    /// (partition index, that shard's per-location partials)
    std::vector<std::pair<std::size_t, QueryResponseBody>> responses;
  };

  void on_message(NodeId from, const std::vector<std::uint8_t>& payload)
      MEGADS_EXCLUDES(mu_);
  /// Route one record to its shard: batch + ship when full, mirror into the
  /// local replica if one exists. Never blocks — during a replica install the
  /// record parks in the shard's pending batch for the installer to drain.
  void route_record(SummaryRecord record) MEGADS_EXCLUDES(mu_);
  /// Move out every non-empty batch, counting each as an in-flight ship
  /// (caller sends them lock-free via ship_batch, which settles the count).
  /// Skips shards mid-install: their backlog belongs to the installer.
  [[nodiscard]] std::vector<std::pair<std::size_t, AddBatchBody>> take_batches()
      const MEGADS_EXCLUDES(mu_);
  void ship_batch(std::size_t shard, AddBatchBody batch) const
      MEGADS_EXCLUDES(mu_);
  /// Settle one in-flight ship for `shard` and wake waiters.
  void finish_ship(std::size_t shard) const MEGADS_EXCLUDES(mu_);
  /// Count one dropped stray message (and mirror it into the registry).
  void note_dropped() const MEGADS_REQUIRES(mu_);
  /// Fetch shard's raw records and install them as a local replica. Writers
  /// keep adding throughout: their records accumulate in pending_[shard] and
  /// the catch-up loop drains them (ship to owner, then apply to the private
  /// replica) until a round finds the backlog empty — only then does the
  /// replica register. The drain waits out scatter_pins_[shard] so it never
  /// ships records a concurrent gather() has snapshotted as synthetic
  /// partials (the owner would answer with them — double count).
  void install_replica(std::size_t shard) const MEGADS_EXCLUDES(mu_);
  /// The scatter/pump/gather half of merged(): flush, scatter to the
  /// partitioner's targets, collect per-shard responses (replicated shards
  /// answer locally), and run the ski-rental bookkeeping.
  [[nodiscard]] std::vector<std::pair<std::size_t, QueryResponseBody>> gather(
      const std::vector<TimeInterval>& intervals,
      const std::vector<std::string>& locations) const MEGADS_EXCLUDES(mu_);
  /// The fold half: merge gathered partials exactly as a single FlowDB would
  /// (per location in shard order, then across locations in sorted order).
  [[nodiscard]] flowtree::Flowtree fold(
      std::vector<std::pair<std::size_t, QueryResponseBody>>& responses) const;
  /// Fold one partial's bytes into `acc` — in place for flat blocks, through
  /// the (counted) normalize choke point for legacy payloads.
  void fold_partial(const std::vector<std::uint8_t>& bytes,
                    flowtree::Flowtree& acc) const MEGADS_EXCLUDES(mu_);
  /// The shard's partials for a selection, computed from the local replica
  /// (same code path as PartitionServer::handle_query, minus the wire).
  [[nodiscard]] QueryResponseBody local_partials(
      const FlowDB& replica, const std::vector<TimeInterval>& intervals,
      const std::vector<std::string>& locations) const;

  /// Manifest narrowing applies only for a sole-ingest coordinator that
  /// opted in (see Options).
  [[nodiscard]] bool manifest_exact() const noexcept {
    return options_.planner_fanout && !options_.assume_external_ingest;
  }

  net::Transport* transport_;
  NodeId node_;
  std::unique_ptr<Partitioner> partitioner_;
  std::vector<NodeId> servers_;
  Options options_;
  std::unordered_map<NodeId, std::size_t> shard_of_node_;

  /// Outermost lock of the query path (rank kCoordinator): held only around
  /// bookkeeping, never across a Transport send or a replica FlowDB call.
  mutable Mutex mu_{lockrank::kCoordinator, "coordinator"};
  /// Signals the installer (the only waiter): a ship settled
  /// (inflight_ships_ decremented) or a scatter pin released.
  mutable CondVar cv_;
  mutable std::uint64_t next_request_id_ MEGADS_GUARDED_BY(mu_) = 1;
  mutable std::unordered_map<std::uint64_t, Gather> gathers_
      MEGADS_GUARDED_BY(mu_);
  /// Request ids of kReplicaFetch messages awaiting their kReplicaData.
  mutable std::unordered_set<std::uint64_t> pending_fetches_
      MEGADS_GUARDED_BY(mu_);
  mutable std::unordered_map<std::uint64_t, AddBatchBody> replica_data_
      MEGADS_GUARDED_BY(mu_);
  mutable std::vector<AddBatchBody> pending_ MEGADS_GUARDED_BY(mu_);  ///< per shard
  mutable std::vector<std::uint64_t> routed_bytes_
      MEGADS_GUARDED_BY(mu_);  ///< per shard, cumulative
  mutable std::vector<std::uint8_t> installing_
      MEGADS_GUARDED_BY(mu_);  ///< per shard: replica install in progress
  mutable std::vector<std::size_t> inflight_ships_
      MEGADS_GUARDED_BY(mu_);  ///< per shard: batches taken, not yet sent
  /// Per shard: gathers that snapshotted this shard's pending records and
  /// have not yet collected the owner's response. While pinned, the
  /// installer's drain must not ship the backlog (see install_replica).
  mutable std::vector<std::size_t> scatter_pins_ MEGADS_GUARDED_BY(mu_);
  mutable std::unordered_map<std::size_t, FlowDB> replicas_
      MEGADS_GUARDED_BY(mu_);
  mutable std::uint64_t remote_shard_queries_ MEGADS_GUARDED_BY(mu_) = 0;
  mutable std::uint64_t local_shard_queries_ MEGADS_GUARDED_BY(mu_) = 0;
  mutable std::uint64_t dropped_messages_ MEGADS_GUARDED_BY(mu_) = 0;
  mutable std::uint64_t response_decodes_ MEGADS_GUARDED_BY(mu_) = 0;
  /// Per-query fan-out state: what was routed where (fed by route_record),
  /// plus the routed-record count — the coordinator's content version for
  /// the planner's fold-sharing keys.
  plan::FanOutPlanner fanout_ MEGADS_GUARDED_BY(mu_);
  std::uint64_t routed_records_ MEGADS_GUARDED_BY(mu_) = 0;
  mutable std::uint64_t fanout_pruned_ MEGADS_GUARDED_BY(mu_) = 0;
  metrics::Counter* metric_dropped_ MEGADS_GUARDED_BY(mu_) = nullptr;
  metrics::Counter* metric_decodes_ MEGADS_GUARDED_BY(mu_) = nullptr;
  metrics::Counter* metric_fanout_pruned_ MEGADS_GUARDED_BY(mu_) = nullptr;

  repl::ReplicaPlacer* placer_ = nullptr;
};

}  // namespace megads::flowdb::dist
