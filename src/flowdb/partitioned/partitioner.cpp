#include "flowdb/partitioned/partitioner.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/hash.hpp"

namespace megads::flowdb::dist {

namespace {

std::vector<std::size_t> all_shards(std::size_t partitions) {
  std::vector<std::size_t> shards(partitions);
  for (std::size_t i = 0; i < partitions; ++i) shards[i] = i;
  return shards;
}

void sort_unique(std::vector<std::size_t>& shards) {
  std::sort(shards.begin(), shards.end());
  shards.erase(std::unique(shards.begin(), shards.end()), shards.end());
}

/// Floor division for possibly-negative virtual times.
constexpr std::int64_t floor_div(std::int64_t a, std::int64_t b) {
  const std::int64_t q = a / b;
  return (a % b != 0 && (a < 0) != (b < 0)) ? q - 1 : q;
}

std::string_view site_prefix(const std::string& location, char delimiter) {
  const std::size_t cut = location.find(delimiter);
  return cut == std::string::npos
             ? std::string_view(location)
             : std::string_view(location).substr(0, cut);
}

}  // namespace

std::vector<std::size_t> Partitioner::targets(
    const std::vector<TimeInterval>& /*intervals*/,
    const std::vector<std::string>& /*locations*/,
    std::size_t partitions) const {
  return all_shards(partitions);
}

// --- TimePartitioner ---

TimePartitioner::TimePartitioner(SimDuration window)
    : TimePartitioner(window, window) {}

TimePartitioner::TimePartitioner(SimDuration window,
                                 SimDuration max_record_span)
    : window_(window), max_record_span_(max_record_span) {
  expects(window > 0, "TimePartitioner: window must be positive");
  expects(max_record_span >= 0,
          "TimePartitioner: max_record_span must be >= 0");
}

std::size_t TimePartitioner::shard_of_window(std::int64_t window_index,
                                             std::size_t partitions) const {
  const auto n = static_cast<std::int64_t>(partitions);
  return static_cast<std::size_t>(((window_index % n) + n) % n);
}

std::size_t TimePartitioner::route(const TimeInterval& interval,
                                   const std::string& /*location*/,
                                   std::size_t partitions) const {
  expects(partitions > 0, "Partitioner::route: no partitions");
  expects(max_record_span_ == kUnboundedRecordSpan ||
              interval.length() <= max_record_span_,
          "TimePartitioner: record interval longer than max_record_span — "
          "targets() could not cover it; raise max_record_span (or pass "
          "kUnboundedRecordSpan)");
  return shard_of_window(floor_div(interval.begin, window_), partitions);
}

std::vector<std::size_t> TimePartitioner::targets(
    const std::vector<TimeInterval>& intervals,
    const std::vector<std::string>& /*locations*/,
    std::size_t partitions) const {
  if (intervals.empty()) return all_shards(partitions);
  // Records route by their begin window but match by overlap, so a selection
  // must also scatter to the begin windows of records that start before it:
  // a record overlapping [begin, end) can begin as early as
  // begin - (max_record_span - 1). Unbounded spans admit no sound narrowing.
  if (max_record_span_ == kUnboundedRecordSpan) return all_shards(partitions);
  const SimDuration reach = max_record_span_ - 1;
  std::vector<std::size_t> shards;
  for (const TimeInterval& interval : intervals) {
    if (interval.empty()) continue;
    const std::int64_t first = floor_div(interval.begin - reach, window_);
    const std::int64_t last = floor_div(interval.end - 1, window_);
    if (last - first + 1 >= static_cast<std::int64_t>(partitions)) {
      return all_shards(partitions);  // the span wraps every shard anyway
    }
    for (std::int64_t w = first; w <= last; ++w) {
      shards.push_back(shard_of_window(w, partitions));
    }
  }
  sort_unique(shards);
  return shards;
}

// --- LocationPartitioner ---

std::size_t LocationPartitioner::route(const TimeInterval& /*interval*/,
                                       const std::string& location,
                                       std::size_t partitions) const {
  expects(partitions > 0, "Partitioner::route: no partitions");
  return static_cast<std::size_t>(mix64(fnv1a(location)) % partitions);
}

std::vector<std::size_t> LocationPartitioner::targets(
    const std::vector<TimeInterval>& /*intervals*/,
    const std::vector<std::string>& locations, std::size_t partitions) const {
  if (locations.empty()) return all_shards(partitions);
  std::vector<std::size_t> shards;
  shards.reserve(locations.size());
  for (const std::string& location : locations) {
    shards.push_back(route(TimeInterval{}, location, partitions));
  }
  sort_unique(shards);
  return shards;
}

// --- PrefixPartitioner ---

PrefixPartitioner::PrefixPartitioner(char delimiter) : delimiter_(delimiter) {}

std::size_t PrefixPartitioner::route(const TimeInterval& /*interval*/,
                                     const std::string& location,
                                     std::size_t partitions) const {
  expects(partitions > 0, "Partitioner::route: no partitions");
  return static_cast<std::size_t>(
      mix64(fnv1a(site_prefix(location, delimiter_))) % partitions);
}

std::vector<std::size_t> PrefixPartitioner::targets(
    const std::vector<TimeInterval>& /*intervals*/,
    const std::vector<std::string>& locations, std::size_t partitions) const {
  if (locations.empty()) return all_shards(partitions);
  std::vector<std::size_t> shards;
  shards.reserve(locations.size());
  for (const std::string& location : locations) {
    shards.push_back(route(TimeInterval{}, location, partitions));
  }
  sort_unique(shards);
  return shards;
}

std::unique_ptr<Partitioner> make_partitioner(const std::string& name) {
  if (name == "by-time") return std::make_unique<TimePartitioner>();
  if (name == "by-location") return std::make_unique<LocationPartitioner>();
  if (name == "by-prefix") return std::make_unique<PrefixPartitioner>();
  throw NotFoundError("unknown partitioner: " + name);
}

}  // namespace megads::flowdb::dist
