#include "flowdb/partitioned/envelope.hpp"

#include <limits>

#include "common/error.hpp"

namespace megads::flowdb::dist {

namespace {

constexpr std::uint32_t kMagic = 0x4D44'4531;  // "MDE1"
constexpr std::uint8_t kVersion = 1;
constexpr std::uint16_t kFlagsNone = 0;  // all flag bits reserved, must be 0

// --- little-endian primitives ---

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) { out.push_back(v); }

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void put_i64(std::vector<std::uint8_t>& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

void put_bytes(std::vector<std::uint8_t>& out, const std::vector<std::uint8_t>& b) {
  put_u32(out, static_cast<std::uint32_t>(b.size()));
  out.insert(out.end(), b.begin(), b.end());
}

void put_string(std::vector<std::uint8_t>& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

/// Bounds-checked cursor: every read validates against the buffer end, so a
/// hostile length prefix fails loudly instead of reading out of bounds.
class Reader {
 public:
  explicit Reader(const std::vector<std::uint8_t>& bytes) : bytes_(bytes) {}

  [[nodiscard]] std::size_t remaining() const { return bytes_.size() - pos_; }

  std::uint8_t u8() {
    need(1, "u8");
    return bytes_[pos_++];
  }
  std::uint16_t u16() {
    need(2, "u16");
    std::uint16_t v = 0;
    for (int i = 0; i < 2; ++i) {
      v = static_cast<std::uint16_t>(v | (std::uint16_t{bytes_[pos_++]} << (8 * i)));
    }
    return v;
  }
  std::uint32_t u32() {
    need(4, "u32");
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t{bytes_[pos_++]} << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    need(8, "u64");
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{bytes_[pos_++]} << (8 * i);
    return v;
  }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  std::vector<std::uint8_t> bytes() {
    const std::uint32_t len = u32();
    need(len, "byte field");
    std::vector<std::uint8_t> out(bytes_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                  bytes_.begin() + static_cast<std::ptrdiff_t>(pos_ + len));
    pos_ += len;
    return out;
  }

  std::string string() {
    const std::uint32_t len = u32();
    need(len, "string field");
    std::string out(bytes_.begin() + static_cast<std::ptrdiff_t>(pos_),
                    bytes_.begin() + static_cast<std::ptrdiff_t>(pos_ + len));
    pos_ += len;
    return out;
  }

  /// Element-count prefix: validated against the bytes actually left, using
  /// the smallest possible element footprint, so a huge count cannot drive a
  /// pre-allocation or a long loop over a short buffer.
  std::uint32_t count(std::size_t min_element_bytes) {
    const std::uint32_t n = u32();
    if (min_element_bytes > 0 && n > remaining() / min_element_bytes) {
      throw ParseError("envelope: element count exceeds buffer");
    }
    return n;
  }

 private:
  void need(std::size_t n, const char* what) const {
    if (n > remaining()) {
      throw ParseError(std::string("envelope: truncated ") + what);
    }
  }

  const std::vector<std::uint8_t>& bytes_;
  std::size_t pos_ = 0;
};

TimeInterval read_interval(Reader& r) {
  TimeInterval interval;
  interval.begin = r.i64();
  interval.end = r.i64();
  return interval;
}

void put_interval(std::vector<std::uint8_t>& out, const TimeInterval& interval) {
  put_i64(out, interval.begin);
  put_i64(out, interval.end);
}

}  // namespace

std::vector<std::uint8_t> encode(const Envelope& envelope) {
  std::vector<std::uint8_t> out;
  put_u32(out, kMagic);
  put_u8(out, kVersion);
  put_u8(out, static_cast<std::uint8_t>(envelope.type));
  put_u16(out, kFlagsNone);
  put_u64(out, envelope.request_id);

  switch (envelope.type) {
    case MessageType::kAddBatch:
    case MessageType::kReplicaData: {
      const auto& body = std::get<AddBatchBody>(envelope.body);
      put_u32(out, static_cast<std::uint32_t>(body.records.size()));
      for (const SummaryRecord& record : body.records) {
        put_interval(out, record.interval);
        put_string(out, record.location);
        put_bytes(out, record.summary);
      }
      break;
    }
    case MessageType::kQueryRequest:
    case MessageType::kReplicaFetch: {
      const auto& body = std::get<SelectionBody>(envelope.body);
      put_u32(out, static_cast<std::uint32_t>(body.intervals.size()));
      for (const TimeInterval& interval : body.intervals) {
        put_interval(out, interval);
      }
      put_u32(out, static_cast<std::uint32_t>(body.locations.size()));
      for (const std::string& location : body.locations) {
        put_string(out, location);
      }
      break;
    }
    case MessageType::kQueryResponse: {
      const auto& body = std::get<QueryResponseBody>(envelope.body);
      put_u32(out, static_cast<std::uint32_t>(body.partials.size()));
      for (const QueryResponseBody::Partial& partial : body.partials) {
        put_string(out, partial.location);
        put_bytes(out, partial.summary);
      }
      break;
    }
  }
  return out;
}

Envelope decode(const std::vector<std::uint8_t>& bytes) {
  Reader r(bytes);
  if (r.u32() != kMagic) throw ParseError("envelope: bad magic");
  if (r.u8() != kVersion) throw ParseError("envelope: unknown version");
  const std::uint8_t raw_type = r.u8();
  if (raw_type < 1 || raw_type > 5) throw ParseError("envelope: unknown type");
  if (r.u16() != kFlagsNone) {
    throw ParseError("envelope: reserved flag bits set");
  }

  Envelope envelope;
  envelope.type = static_cast<MessageType>(raw_type);
  envelope.request_id = r.u64();

  switch (envelope.type) {
    case MessageType::kAddBatch:
    case MessageType::kReplicaData: {
      AddBatchBody body;
      // min element: 16B interval + 4B location len + 4B summary len
      const std::uint32_t n = r.count(24);
      body.records.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        SummaryRecord record;
        record.interval = read_interval(r);
        record.location = r.string();
        record.summary = r.bytes();
        body.records.push_back(std::move(record));
      }
      envelope.body = std::move(body);
      break;
    }
    case MessageType::kQueryRequest:
    case MessageType::kReplicaFetch: {
      SelectionBody body;
      const std::uint32_t intervals = r.count(16);
      body.intervals.reserve(intervals);
      for (std::uint32_t i = 0; i < intervals; ++i) {
        body.intervals.push_back(read_interval(r));
      }
      const std::uint32_t locations = r.count(4);
      body.locations.reserve(locations);
      for (std::uint32_t i = 0; i < locations; ++i) {
        body.locations.push_back(r.string());
      }
      envelope.body = std::move(body);
      break;
    }
    case MessageType::kQueryResponse: {
      QueryResponseBody body;
      const std::uint32_t n = r.count(8);  // two length prefixes minimum
      body.partials.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        QueryResponseBody::Partial partial;
        partial.location = r.string();
        partial.summary = r.bytes();
        body.partials.push_back(std::move(partial));
      }
      envelope.body = std::move(body);
      break;
    }
  }
  if (r.remaining() != 0) throw ParseError("envelope: trailing bytes");
  return envelope;
}

}  // namespace megads::flowdb::dist
