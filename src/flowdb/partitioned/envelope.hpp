// Wire envelopes of the partitioned FlowDB (coordinator <-> partition
// server). One framing for every message: a fixed header (magic, version,
// type, flags, request id) followed by length-prefixed sections. All
// integers little-endian; every variable-length field carries an explicit
// length prefix, so a decoder never reads past what the sender declared.
//
// The decoder is deliberately strict — wrong magic, unknown version or type,
// any set flag bit (all are reserved), or a length running past the buffer
// raises ParseError. Strictness is what makes the format fuzzable: the
// decoder either returns a fully validated message or throws; it never
// half-parses. fuzz/fuzz_envelope.cpp drives exactly this contract.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/types.hpp"

namespace megads::flowdb::dist {

enum class MessageType : std::uint8_t {
  kAddBatch = 1,       ///< coordinator -> server: index these summaries
  kQueryRequest = 2,   ///< coordinator -> server: scatter one selection
  kQueryResponse = 3,  ///< server -> coordinator: per-location stage-1 folds
  kReplicaFetch = 4,   ///< replica host -> owner: send raw summaries
  kReplicaData = 5,    ///< owner -> replica host: the requested summaries
};

/// One exported summary plus the index metadata it travels with.
struct SummaryRecord {
  std::vector<std::uint8_t> summary;  ///< Flowtree::encode() bytes
  TimeInterval interval;
  std::string location;
};

/// kAddBatch / kReplicaData body.
struct AddBatchBody {
  std::vector<SummaryRecord> records;
};

/// kQueryRequest / kReplicaFetch body: a (time ranges, locations) selection.
struct SelectionBody {
  std::vector<TimeInterval> intervals;
  std::vector<std::string> locations;
};

/// kQueryResponse body: each matched location's stage-1 fold, encoded. The
/// locations arrive in the server's index order (sorted); the coordinator
/// re-sorts globally before its stage-2 fold.
struct QueryResponseBody {
  struct Partial {
    std::string location;
    std::vector<std::uint8_t> summary;
  };
  std::vector<Partial> partials;
};

struct Envelope {
  MessageType type = MessageType::kQueryRequest;
  std::uint64_t request_id = 0;
  std::variant<AddBatchBody, SelectionBody, QueryResponseBody> body;
};

/// Serialize to the wire format described above.
[[nodiscard]] std::vector<std::uint8_t> encode(const Envelope& envelope);

/// Parse and validate; throws ParseError on any malformed input.
[[nodiscard]] Envelope decode(const std::vector<std::uint8_t>& bytes);

}  // namespace megads::flowdb::dist
