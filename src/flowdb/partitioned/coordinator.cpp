#include "flowdb/partitioned/coordinator.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "common/error.hpp"

namespace megads::flowdb::dist {

Coordinator::Coordinator(net::Transport& transport, NodeId node,
                         std::unique_ptr<Partitioner> partitioner,
                         std::vector<NodeId> servers, Options options)
    : transport_(&transport),
      node_(node),
      partitioner_(std::move(partitioner)),
      servers_(std::move(servers)),
      options_(options),
      fanout_(servers_.size()) {
  expects(partitioner_ != nullptr, "Coordinator: null partitioner");
  expects(!servers_.empty(), "Coordinator: no partition servers");
  expects(options_.add_batch_size > 0, "Coordinator: zero batch size");
  pending_.resize(servers_.size());
  routed_bytes_.assign(servers_.size(), 0);
  installing_.assign(servers_.size(), 0);
  inflight_ships_.assign(servers_.size(), 0);
  scatter_pins_.assign(servers_.size(), 0);
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    shard_of_node_[servers_[i]] = i;
  }
  transport_->bind(
      node_, [this](NodeId from, const std::vector<std::uint8_t>& payload,
                    SimTime /*now*/) { on_message(from, payload); });
}

Coordinator::~Coordinator() { transport_->unbind(node_); }

void Coordinator::add(const flowtree::Flowtree& tree, TimeInterval interval,
                      std::string location) {
  route_record(SummaryRecord{flowtree::FlatCodec::encode(tree), interval,
                             std::move(location)});
}

void Coordinator::add_encoded(std::vector<std::uint8_t> bytes,
                              TimeInterval interval, std::string location) {
  // Normalize to a flat block here, on the caller's thread: hostile bytes
  // throw at ingest instead of inside a server's delivery callback, and every
  // record past this point ships / stores / replicates verbatim.
  route_record(
      SummaryRecord{flowtree::FlatCodec::normalize(bytes, options_.tree_config),
                    interval, std::move(location)});
}

void Coordinator::route_record(SummaryRecord record) {
  const std::size_t shard =
      partitioner_->route(record.interval, record.location, servers_.size());
  AddBatchBody full;
  FlowDB* replica = nullptr;
  {
    UniqueLock lock(mu_);
    routed_bytes_[shard] += record.summary.size();
    // Fan-out manifest + content version: every record routed through this
    // coordinator is visible to the planner before add() returns.
    fanout_.note_routed(shard, record.interval, record.location);
    ++routed_records_;
    if (const auto it = replicas_.find(shard); it != replicas_.end()) {
      replica = &it->second;  // keep the local replica in sync with the owner
    }
    pending_[shard].records.push_back(record);
    // During a replica install the record just parks in pending_: the
    // installer's catch-up loop owns the backlog and will ship it to the
    // owner before applying it to the replica — an add never waits.
    if (!installing_[shard] &&
        pending_[shard].records.size() >= options_.add_batch_size) {
      full = std::exchange(pending_[shard], {});
      ++inflight_ships_[shard];
    }
  }
  if (replica != nullptr) {
    replica->add_encoded(record.summary, record.interval, record.location);
  }
  if (!full.records.empty()) ship_batch(shard, std::move(full));
}

std::vector<std::pair<std::size_t, AddBatchBody>> Coordinator::take_batches()
    const {
  std::vector<std::pair<std::size_t, AddBatchBody>> out;
  const MutexLock lock(mu_);
  for (std::size_t shard = 0; shard < pending_.size(); ++shard) {
    if (installing_[shard]) continue;  // backlog belongs to the installer
    if (!pending_[shard].records.empty()) {
      out.emplace_back(shard, std::exchange(pending_[shard], {}));
      ++inflight_ships_[shard];
    }
  }
  return out;
}

void Coordinator::ship_batch(std::size_t shard, AddBatchBody batch) const {
  Envelope envelope;
  envelope.type = MessageType::kAddBatch;
  envelope.request_id = 0;  // fire-and-forget
  envelope.body = std::move(batch);
  try {
    transport_->send_message(node_, servers_[shard], encode(envelope));
  } catch (...) {
    finish_ship(shard);
    throw;
  }
  finish_ship(shard);
}

void Coordinator::finish_ship(std::size_t shard) const {
  {
    const MutexLock lock(mu_);
    --inflight_ships_[shard];
  }
  cv_.notify_all();
}

void Coordinator::flush() {
  for (auto& [shard, batch] : take_batches()) {
    ship_batch(shard, std::move(batch));
  }
}

void Coordinator::on_message(NodeId from,
                             const std::vector<std::uint8_t>& payload) {
  // A transport delivery callback must never throw: one stray, duplicate,
  // late, or corrupt message would crash the coordinator. Count and drop.
  Envelope envelope;
  try {
    envelope = decode(payload);
  } catch (const ParseError&) {
    const MutexLock lock(mu_);
    note_dropped();
    return;
  }
  const MutexLock lock(mu_);
  switch (envelope.type) {
    case MessageType::kQueryResponse: {
      const auto gather = gathers_.find(envelope.request_id);
      const auto shard = shard_of_node_.find(from);
      if (gather == gathers_.end() || shard == shard_of_node_.end()) {
        break;  // late (gather already closed) or from an unknown node
      }
      auto& responses = gather->second.responses;
      if (std::any_of(responses.begin(), responses.end(), [&](const auto& r) {
            return r.first == shard->second;
          })) {
        break;  // duplicate delivery of a shard's response
      }
      responses.emplace_back(
          shard->second, std::move(std::get<QueryResponseBody>(envelope.body)));
      return;
    }
    case MessageType::kReplicaData: {
      const auto fetch = pending_fetches_.find(envelope.request_id);
      if (fetch == pending_fetches_.end()) break;  // unsolicited or duplicate
      pending_fetches_.erase(fetch);
      replica_data_[envelope.request_id] =
          std::move(std::get<AddBatchBody>(envelope.body));
      return;
    }
    case MessageType::kAddBatch:
    case MessageType::kQueryRequest:
    case MessageType::kReplicaFetch:
      break;  // request-type envelopes never address a coordinator
  }
  note_dropped();
}

void Coordinator::note_dropped() const {
  ++dropped_messages_;
  if (metric_dropped_ != nullptr) metric_dropped_->add(1);
}

void Coordinator::attach_metrics(metrics::MetricsRegistry& registry) {
  metrics::Counter& dropped = registry.counter("net.dropped_coordinator");
  metrics::Counter& decodes = registry.counter("net.decode_coordinator");
  metrics::Counter& pruned = registry.counter("plan.fanout_pruned");
  const MutexLock lock(mu_);
  metric_dropped_ = &dropped;
  metric_dropped_->add(dropped_messages_);  // catch up on pre-attach drops
  metric_decodes_ = &decodes;
  metric_decodes_->add(response_decodes_);
  metric_fanout_pruned_ = &pruned;
  metric_fanout_pruned_->add(fanout_pruned_);
}

QueryResponseBody Coordinator::local_partials(
    const FlowDB& replica, const std::vector<TimeInterval>& intervals,
    const std::vector<std::string>& locations) const {
  // Mirrors PartitionServer::handle_query exactly (minus the wire): the
  // replica holds the shard's records, so the partials are byte-identical to
  // what the owner would have sent.
  QueryResponseBody body;
  for (const std::string& location :
       replica.matching_locations(intervals, locations)) {
    body.partials.push_back(
        {location,
         flowtree::FlatCodec::encode(replica.merged(intervals, {location}))});
  }
  return body;
}

void Coordinator::install_replica(std::size_t shard) const {
  std::uint64_t request_id = 0;
  {
    UniqueLock lock(mu_);
    if (replicas_.find(shard) != replicas_.end() || installing_[shard]) {
      return;  // already local, or another querier is mid-buy
    }
    // From here on, adds routed to this shard accumulate in pending_ for the
    // catch-up loop below — writers never wait. Batches taken *before* the
    // flag was set are already bound for the owner; wait them out so the
    // fetch snapshot covers them (FIFO transports deliver sends in order).
    // Only the installer blocks here, never an add() or a merged().
    installing_[shard] = 1;
    cv_.wait(lock, [&] {
      mu_.assert_held();  // wait predicates run under the lock
      return inflight_ships_[shard] == 0;
    });
    request_id = next_request_id_++;
    pending_fetches_.insert(request_id);
  }
  try {
    Envelope fetch;
    fetch.type = MessageType::kReplicaFetch;
    fetch.request_id = request_id;
    fetch.body = SelectionBody{};  // everything the shard holds
    transport_->send_message(node_, servers_[shard], encode(fetch));
    transport_->run_until_idle();

    AddBatchBody data;
    {
      const MutexLock lock(mu_);
      const auto it = replica_data_.find(request_id);
      expects(it != replica_data_.end(),
              "Coordinator: replica data not delivered");
      data = std::move(it->second);
      replica_data_.erase(it);
    }
    FlowDB replica(options_.tree_config);
    for (const SummaryRecord& record : data.records) {
      replica.add_encoded(record.summary, record.interval, record.location);
    }
    // Catch-up: drain the backlog that accumulated while we fetched — ship
    // each round to the owner first (it stays authoritative), then apply it
    // to the still-private replica. Register only once a round finds the
    // backlog empty; an add slipping in right before that final check lands
    // in the backlog, one right after sees the registered replica — the
    // same mutex orders both, so no record falls between snapshot and
    // registration. Rounds wait out scatter_pins_: a pinned gather has
    // folded these records as synthetic partials and the owner must not
    // answer that gather's scatter with them too.
    while (true) {
      AddBatchBody backlog;
      {
        UniqueLock lock(mu_);
        cv_.wait(lock, [&] {
          mu_.assert_held();  // wait predicates run under the lock
          return scatter_pins_[shard] == 0;
        });
        if (pending_[shard].records.empty()) {
          replicas_.emplace(shard, std::move(replica));
          installing_[shard] = 0;
          break;
        }
        backlog = std::exchange(pending_[shard], {});
        ++inflight_ships_[shard];
      }
      ship_batch(shard, AddBatchBody(backlog));
      for (const SummaryRecord& record : backlog.records) {
        replica.add_encoded(record.summary, record.interval, record.location);
      }
    }
  } catch (...) {
    {
      const MutexLock lock(mu_);
      installing_[shard] = 0;
      pending_fetches_.erase(request_id);
      replica_data_.erase(request_id);
    }
    cv_.notify_all();
    throw;
  }
  cv_.notify_all();
}

std::vector<std::pair<std::size_t, QueryResponseBody>> Coordinator::gather(
    const std::vector<TimeInterval>& intervals,
    const std::vector<std::string>& locations) const {
  // A selection must observe every add that precedes it: ship the partial
  // batches, then drain the transport so the servers have indexed them.
  for (auto& [shard, batch] : take_batches()) {
    ship_batch(shard, std::move(batch));
  }
  transport_->run_until_idle();

  // Per-query fan-out: the partitioner-global target set intersected with
  // the routed-record manifest (plan/fanout.hpp). decide() runs under mu_,
  // after the flush above — the manifest only grows, so the decision is
  // conservative for every add that happened-before this selection.
  plan::FanOutPlanner::Decision decision;
  {
    const MutexLock lock(mu_);
    decision = fanout_.decide(*partitioner_, intervals, locations,
                              servers_.size(), manifest_exact());
    fanout_pruned_ += decision.manifest_pruned;
    if (metric_fanout_pruned_ != nullptr) {
      metric_fanout_pruned_->add(decision.manifest_pruned);
    }
  }
  const std::vector<std::size_t>& targets = decision.targets;

  // Split replicated shards (served locally) from remote ones; open the
  // gather before the first scatter so a synchronous transport's responses
  // find it. A shard mid-install is remote, but records parked in its
  // pending batch are at neither the owner nor any replica yet — snapshot
  // them under the same lock (read-your-writes: an add that returned before
  // this merged() is either shipped, parked, or replicated) and pin the
  // shard so the installer cannot ship the snapshot to the owner before it
  // answers our scatter, which would fold those records twice.
  std::vector<std::size_t> remote;
  std::vector<std::pair<std::size_t, const FlowDB*>> local;
  std::vector<std::pair<std::size_t, AddBatchBody>> parked;
  std::uint64_t request_id = 0;
  {
    const MutexLock lock(mu_);
    for (const std::size_t shard : targets) {
      if (const auto it = replicas_.find(shard); it != replicas_.end()) {
        local.emplace_back(shard, &it->second);
      } else {
        remote.push_back(shard);
        if (installing_[shard] && !pending_[shard].records.empty()) {
          parked.emplace_back(shard, pending_[shard]);
          ++scatter_pins_[shard];
        }
      }
    }
    remote_shard_queries_ += remote.size();
    local_shard_queries_ += local.size();
    if (!remote.empty()) {
      request_id = next_request_id_++;
      gathers_[request_id].expected = remote.size();
    }
  }

  for (const std::size_t shard : remote) {
    Envelope request;
    request.type = MessageType::kQueryRequest;
    request.request_id = request_id;
    request.body = SelectionBody{intervals, locations};
    transport_->send_message(node_, servers_[shard], encode(request));
  }
  transport_->run_until_idle();

  std::vector<std::pair<std::size_t, QueryResponseBody>> responses;
  if (!remote.empty() || !parked.empty()) {
    const MutexLock lock(mu_);
    // Unpin before anything can throw: a leaked pin wedges the installer.
    for (const auto& [shard, batch] : parked) --scatter_pins_[shard];
    if (!remote.empty()) {
      const auto it = gathers_.find(request_id);
      expects(it != gathers_.end() &&
                  it->second.responses.size() == it->second.expected,
              "Coordinator: scatter-gather incomplete (transport not idle?)");
      responses = std::move(it->second.responses);
      gathers_.erase(it);
    }
  }
  if (!parked.empty()) cv_.notify_all();

  // Every remote gather is a ski-rental access: the policy sees the shipped
  // result bytes and may say "buy" — fetch the shard's records and serve it
  // locally from now on.
  if (placer_ != nullptr) {
    const SimTime now = transport_->now();
    for (const auto& [shard, body] : responses) {
      std::uint64_t result_bytes = 0;
      for (const QueryResponseBody::Partial& partial : body.partials) {
        result_bytes += partial.summary.size();
      }
      std::uint64_t routed = 0;
      {
        const MutexLock lock(mu_);
        routed = routed_bytes_[shard];
      }
      const PartitionId partition{static_cast<std::uint32_t>(shard)};
      placer_->track(partition, now, routed);
      if (placer_->should_replicate(partition, now, result_bytes)) {
        install_replica(shard);
      }
    }
  }

  // Fold the parked snapshots in as synthetic partials of their shard,
  // after the placer has seen the genuinely shipped bytes: these records
  // never crossed the wire, so they must not tip the ski-rental ledger.
  // Appending to the shard's own response keeps fold()'s per-location
  // shard-order semantics (owner partial first, parked records in add
  // order — fold's stable sort preserves it).
  const auto wanted_time = [&](const TimeInterval& interval) {
    if (intervals.empty()) return true;
    return std::any_of(intervals.begin(), intervals.end(),
                       [&](const TimeInterval& w) { return w.overlaps(interval); });
  };
  const auto wanted_location = [&](const std::string& location) {
    if (locations.empty()) return true;
    return std::find(locations.begin(), locations.end(), location) !=
           locations.end();
  };
  for (auto& [shard, batch] : parked) {
    const std::size_t shard_id = shard;
    auto it = std::find_if(responses.begin(), responses.end(),
                           [&](const auto& r) { return r.first == shard_id; });
    if (it == responses.end()) {
      responses.emplace_back(shard, QueryResponseBody{});
      it = std::prev(responses.end());
    }
    for (SummaryRecord& record : batch.records) {
      if (!wanted_time(record.interval) || !wanted_location(record.location)) {
        continue;
      }
      it->second.partials.push_back(
          {record.location, std::move(record.summary)});
    }
  }

  for (const auto& [shard, db] : local) {
    QueryResponseBody body = local_partials(*db, intervals, locations);
    if (placer_ != nullptr) {
      std::uint64_t result_bytes = 0;
      for (const QueryResponseBody::Partial& partial : body.partials) {
        result_bytes += partial.summary.size();
      }
      placer_->observe_local(PartitionId{static_cast<std::uint32_t>(shard)},
                             transport_->now(), result_bytes);
    }
    responses.emplace_back(shard, std::move(body));
  }
  return responses;
}

void Coordinator::fold_partial(const std::vector<std::uint8_t>& bytes,
                               flowtree::Flowtree& acc) const {
  if (flowtree::FlatView::looks_flat(bytes)) {
    // The warm path: the wire payload folds in place, no intermediate tree.
    flowtree::FlatCodec::merge_into(flowtree::FlatView::parse(bytes), acc);
    return;
  }
  // A legacy (FTRE) partial — possible only when talking to a pre-flat
  // server. Counted so the bench can pin the warm path at zero, and routed
  // through the normalize choke point rather than a local decode.
  {
    const MutexLock lock(mu_);
    ++response_decodes_;
    if (metric_decodes_ != nullptr) metric_decodes_->add(1);
  }
  const auto flat = flowtree::FlatCodec::normalize(bytes, options_.tree_config);
  flowtree::FlatCodec::merge_into(flowtree::FlatView::parse(flat), acc);
}

flowtree::Flowtree Coordinator::fold(
    std::vector<std::pair<std::size_t, QueryResponseBody>>& responses) const {
  // Fold exactly as FlowDB::merged folds: stage 1 finishes by merging each
  // location's partials in shard order (shared location); stage 2 merges the
  // per-location trees in sorted location order (shared time). std::map
  // iteration gives the sorted order.
  std::map<std::string, std::vector<std::pair<std::size_t, const std::vector<std::uint8_t>*>>>
      by_location;
  for (const auto& [shard, body] : responses) {
    for (const QueryResponseBody::Partial& partial : body.partials) {
      by_location[partial.location].emplace_back(shard, &partial.summary);
    }
  }
  flowtree::Flowtree result(options_.tree_config);
  for (auto& [location, parts] : by_location) {
    // Stable: within a shard, the owner's stage-1 partial precedes any
    // synthetic parked-record partials gather() appended after it.
    std::stable_sort(parts.begin(), parts.end(),
                     [](const auto& a, const auto& b) { return a.first < b.first; });
    flowtree::Flowtree per_location(options_.tree_config);
    for (const auto& [shard, bytes] : parts) {
      fold_partial(*bytes, per_location);
    }
    result.merge(per_location);
  }
  return result;
}

flowtree::Flowtree Coordinator::merged(
    const std::vector<TimeInterval>& intervals,
    const std::vector<std::string>& locations) const {
  auto responses = gather(intervals, locations);
  return fold(responses);
}

flowtree::MergedView Coordinator::merged_view(
    const std::vector<TimeInterval>& intervals,
    const std::vector<std::string>& locations) const {
  auto responses = gather(intervals, locations);
  // Exactly one flat partial: no fold is needed at all — the response bytes
  // already are the stage-1 = stage-2 result. Hand them out zero-copy.
  QueryResponseBody::Partial* only = nullptr;
  std::size_t partials = 0;
  for (auto& [shard, body] : responses) {
    for (QueryResponseBody::Partial& partial : body.partials) {
      ++partials;
      only = &partial;
    }
  }
  if (partials == 1 && flowtree::FlatView::looks_flat(only->summary)) {
    return flowtree::MergedView::from_flat(
        std::make_shared<const std::vector<std::uint8_t>>(
            std::move(only->summary)));
  }
  return flowtree::MergedView(fold(responses));
}

std::uint64_t Coordinator::remote_shard_queries() const {
  const MutexLock lock(mu_);
  return remote_shard_queries_;
}

std::uint64_t Coordinator::local_shard_queries() const {
  const MutexLock lock(mu_);
  return local_shard_queries_;
}

std::size_t Coordinator::replicated_partitions() const {
  const MutexLock lock(mu_);
  return replicas_.size();
}

std::uint64_t Coordinator::dropped_messages() const {
  const MutexLock lock(mu_);
  return dropped_messages_;
}

std::uint64_t Coordinator::response_decodes() const {
  const MutexLock lock(mu_);
  return response_decodes_;
}

std::uint64_t Coordinator::fanout_pruned_shards() const {
  const MutexLock lock(mu_);
  return fanout_pruned_;
}

PlanProbe Coordinator::plan_probe(
    const std::vector<TimeInterval>& intervals,
    const std::vector<std::string>& locations) const {
  // Nominal partial size for the probe's transfer-cost estimate: the probe
  // ranks candidate scatters, it does not predict exact byte counts.
  constexpr std::uint64_t kProbePartialBytes = 4096;

  PlanProbe probe;
  probe.known = true;
  probe.versioned = true;
  probe.shards_total = servers_.size();

  plan::FanOutPlanner::Decision decision;
  std::vector<std::size_t> remote;
  {
    const MutexLock lock(mu_);
    probe.version = routed_records_;
    decision = fanout_.decide(*partitioner_, intervals, locations,
                              servers_.size(), manifest_exact());
    for (const std::size_t shard : decision.targets) {
      if (replicas_.find(shard) != replicas_.end()) {
        ++probe.local_shards;
      } else {
        remote.push_back(shard);
      }
    }
  }
  probe.shards_selected = decision.targets.size();
  probe.shards_pruned = decision.manifest_pruned;
  probe.summary_count = static_cast<std::size_t>(decision.est_records);
  probe.location_groups = locations.empty() ? 1 : locations.size();
  for (const std::size_t shard : remote) {
    probe.scatter_transfer_cost += static_cast<double>(
        transport_->transfer_time_unloaded(servers_[shard], node_,
                                           kProbePartialBytes));
  }
  return probe;
}

}  // namespace megads::flowdb::dist
