#include "flowdb/partitioned/coordinator.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "common/error.hpp"

namespace megads::flowdb::dist {

Coordinator::Coordinator(net::Transport& transport, NodeId node,
                         std::unique_ptr<Partitioner> partitioner,
                         std::vector<NodeId> servers, Options options)
    : transport_(&transport),
      node_(node),
      partitioner_(std::move(partitioner)),
      servers_(std::move(servers)),
      options_(options) {
  expects(partitioner_ != nullptr, "Coordinator: null partitioner");
  expects(!servers_.empty(), "Coordinator: no partition servers");
  expects(options_.add_batch_size > 0, "Coordinator: zero batch size");
  pending_.resize(servers_.size());
  routed_bytes_.assign(servers_.size(), 0);
  installing_.assign(servers_.size(), 0);
  inflight_ships_.assign(servers_.size(), 0);
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    shard_of_node_[servers_[i]] = i;
  }
  transport_->bind(
      node_, [this](NodeId from, const std::vector<std::uint8_t>& payload,
                    SimTime /*now*/) { on_message(from, payload); });
}

Coordinator::~Coordinator() { transport_->unbind(node_); }

void Coordinator::add(const flowtree::Flowtree& tree, TimeInterval interval,
                      std::string location) {
  route_record(SummaryRecord{tree.encode(), interval, std::move(location)});
}

void Coordinator::add_encoded(std::vector<std::uint8_t> bytes,
                              TimeInterval interval, std::string location) {
  route_record(SummaryRecord{std::move(bytes), interval, std::move(location)});
}

void Coordinator::route_record(SummaryRecord record) {
  const std::size_t shard =
      partitioner_->route(record.interval, record.location, servers_.size());
  AddBatchBody full;
  FlowDB* replica = nullptr;
  {
    UniqueLock lock(mu_);
    // A replica install snapshots the shard's owner; a record routed between
    // that snapshot and the replica's registration would be in neither, so
    // hold the add until the install settles (then the replicas_ lookup below
    // sees the fresh replica and keeps it in sync).
    cv_.wait(lock, [&] {
      mu_.assert_held();  // wait predicates run under the lock
      return !installing_[shard];
    });
    routed_bytes_[shard] += record.summary.size();
    if (const auto it = replicas_.find(shard); it != replicas_.end()) {
      replica = &it->second;  // keep the local replica in sync with the owner
    }
    pending_[shard].records.push_back(record);
    if (pending_[shard].records.size() >= options_.add_batch_size) {
      full = std::exchange(pending_[shard], {});
      ++inflight_ships_[shard];
    }
  }
  if (replica != nullptr) {
    replica->add_encoded(record.summary, record.interval, record.location);
  }
  if (!full.records.empty()) ship_batch(shard, std::move(full));
}

std::vector<std::pair<std::size_t, AddBatchBody>> Coordinator::take_batches()
    const {
  std::vector<std::pair<std::size_t, AddBatchBody>> out;
  const MutexLock lock(mu_);
  for (std::size_t shard = 0; shard < pending_.size(); ++shard) {
    if (!pending_[shard].records.empty()) {
      out.emplace_back(shard, std::exchange(pending_[shard], {}));
      ++inflight_ships_[shard];
    }
  }
  return out;
}

void Coordinator::ship_batch(std::size_t shard, AddBatchBody batch) const {
  Envelope envelope;
  envelope.type = MessageType::kAddBatch;
  envelope.request_id = 0;  // fire-and-forget
  envelope.body = std::move(batch);
  try {
    transport_->send_message(node_, servers_[shard], encode(envelope));
  } catch (...) {
    finish_ship(shard);
    throw;
  }
  finish_ship(shard);
}

void Coordinator::finish_ship(std::size_t shard) const {
  {
    const MutexLock lock(mu_);
    --inflight_ships_[shard];
  }
  cv_.notify_all();
}

void Coordinator::flush() {
  for (auto& [shard, batch] : take_batches()) {
    ship_batch(shard, std::move(batch));
  }
}

void Coordinator::on_message(NodeId from,
                             const std::vector<std::uint8_t>& payload) {
  // A transport delivery callback must never throw: one stray, duplicate,
  // late, or corrupt message would crash the coordinator. Count and drop.
  Envelope envelope;
  try {
    envelope = decode(payload);
  } catch (const ParseError&) {
    const MutexLock lock(mu_);
    note_dropped();
    return;
  }
  const MutexLock lock(mu_);
  switch (envelope.type) {
    case MessageType::kQueryResponse: {
      const auto gather = gathers_.find(envelope.request_id);
      const auto shard = shard_of_node_.find(from);
      if (gather == gathers_.end() || shard == shard_of_node_.end()) {
        break;  // late (gather already closed) or from an unknown node
      }
      auto& responses = gather->second.responses;
      if (std::any_of(responses.begin(), responses.end(), [&](const auto& r) {
            return r.first == shard->second;
          })) {
        break;  // duplicate delivery of a shard's response
      }
      responses.emplace_back(
          shard->second, std::move(std::get<QueryResponseBody>(envelope.body)));
      return;
    }
    case MessageType::kReplicaData: {
      const auto fetch = pending_fetches_.find(envelope.request_id);
      if (fetch == pending_fetches_.end()) break;  // unsolicited or duplicate
      pending_fetches_.erase(fetch);
      replica_data_[envelope.request_id] =
          std::move(std::get<AddBatchBody>(envelope.body));
      return;
    }
    case MessageType::kAddBatch:
    case MessageType::kQueryRequest:
    case MessageType::kReplicaFetch:
      break;  // request-type envelopes never address a coordinator
  }
  note_dropped();
}

void Coordinator::note_dropped() const {
  ++dropped_messages_;
  if (metric_dropped_ != nullptr) metric_dropped_->add(1);
}

void Coordinator::attach_metrics(metrics::MetricsRegistry& registry) {
  metrics::Counter& dropped = registry.counter("net.dropped_coordinator");
  const MutexLock lock(mu_);
  metric_dropped_ = &dropped;
  metric_dropped_->add(dropped_messages_);  // catch up on pre-attach drops
}

QueryResponseBody Coordinator::local_partials(
    const FlowDB& replica, const std::vector<TimeInterval>& intervals,
    const std::vector<std::string>& locations) const {
  // Mirrors PartitionServer::handle_query exactly (minus the wire): the
  // replica holds the shard's records, so the partials are byte-identical to
  // what the owner would have sent.
  QueryResponseBody body;
  for (const std::string& location :
       replica.matching_locations(intervals, locations)) {
    body.partials.push_back(
        {location, replica.merged(intervals, {location}).encode()});
  }
  return body;
}

void Coordinator::install_replica(std::size_t shard) const {
  std::uint64_t request_id = 0;
  AddBatchBody pre;
  {
    UniqueLock lock(mu_);
    if (replicas_.find(shard) != replicas_.end() || installing_[shard]) {
      return;  // already local, or another querier is mid-buy
    }
    // From here until the replica is registered, adds routed to this shard
    // block in route_record — nothing can slip between the owner's snapshot
    // and the install. Batches already taken for shipping must reach the
    // owner before the fetch, so wait them out, then ship the still-pending
    // batch ourselves ahead of the fetch (FIFO transports deliver in order).
    installing_[shard] = 1;
    cv_.wait(lock, [&] {
      mu_.assert_held();  // wait predicates run under the lock
      return inflight_ships_[shard] == 0;
    });
    pre = std::exchange(pending_[shard], {});
    if (!pre.records.empty()) ++inflight_ships_[shard];
    request_id = next_request_id_++;
    pending_fetches_.insert(request_id);
  }
  try {
    if (!pre.records.empty()) ship_batch(shard, std::move(pre));
    Envelope fetch;
    fetch.type = MessageType::kReplicaFetch;
    fetch.request_id = request_id;
    fetch.body = SelectionBody{};  // everything the shard holds
    transport_->send_message(node_, servers_[shard], encode(fetch));
    transport_->run_until_idle();

    AddBatchBody data;
    {
      const MutexLock lock(mu_);
      const auto it = replica_data_.find(request_id);
      expects(it != replica_data_.end(),
              "Coordinator: replica data not delivered");
      data = std::move(it->second);
      replica_data_.erase(it);
    }
    FlowDB replica(options_.tree_config);
    for (const SummaryRecord& record : data.records) {
      replica.add_encoded(record.summary, record.interval, record.location);
    }
    {
      const MutexLock lock(mu_);
      replicas_.emplace(shard, std::move(replica));
      installing_[shard] = 0;
    }
  } catch (...) {
    {
      const MutexLock lock(mu_);
      installing_[shard] = 0;
      pending_fetches_.erase(request_id);
      replica_data_.erase(request_id);
    }
    cv_.notify_all();
    throw;
  }
  cv_.notify_all();
}

flowtree::Flowtree Coordinator::merged(
    const std::vector<TimeInterval>& intervals,
    const std::vector<std::string>& locations) const {
  // A selection must observe every add that precedes it: ship the partial
  // batches, then drain the transport so the servers have indexed them.
  for (auto& [shard, batch] : take_batches()) {
    ship_batch(shard, std::move(batch));
  }
  transport_->run_until_idle();

  const std::vector<std::size_t> targets =
      partitioner_->targets(intervals, locations, servers_.size());

  // Split replicated shards (served locally) from remote ones; open the
  // gather before the first scatter so a synchronous transport's responses
  // find it.
  std::vector<std::size_t> remote;
  std::vector<std::pair<std::size_t, const FlowDB*>> local;
  std::uint64_t request_id = 0;
  {
    const MutexLock lock(mu_);
    for (const std::size_t shard : targets) {
      if (const auto it = replicas_.find(shard); it != replicas_.end()) {
        local.emplace_back(shard, &it->second);
      } else {
        remote.push_back(shard);
      }
    }
    remote_shard_queries_ += remote.size();
    local_shard_queries_ += local.size();
    if (!remote.empty()) {
      request_id = next_request_id_++;
      gathers_[request_id].expected = remote.size();
    }
  }

  for (const std::size_t shard : remote) {
    Envelope request;
    request.type = MessageType::kQueryRequest;
    request.request_id = request_id;
    request.body = SelectionBody{intervals, locations};
    transport_->send_message(node_, servers_[shard], encode(request));
  }
  transport_->run_until_idle();

  std::vector<std::pair<std::size_t, QueryResponseBody>> responses;
  if (!remote.empty()) {
    const MutexLock lock(mu_);
    const auto it = gathers_.find(request_id);
    expects(it != gathers_.end() &&
                it->second.responses.size() == it->second.expected,
            "Coordinator: scatter-gather incomplete (transport not idle?)");
    responses = std::move(it->second.responses);
    gathers_.erase(it);
  }

  // Every remote gather is a ski-rental access: the policy sees the shipped
  // result bytes and may say "buy" — fetch the shard's records and serve it
  // locally from now on.
  if (placer_ != nullptr) {
    const SimTime now = transport_->now();
    for (const auto& [shard, body] : responses) {
      std::uint64_t result_bytes = 0;
      for (const QueryResponseBody::Partial& partial : body.partials) {
        result_bytes += partial.summary.size();
      }
      std::uint64_t routed = 0;
      {
        const MutexLock lock(mu_);
        routed = routed_bytes_[shard];
      }
      const PartitionId partition{static_cast<std::uint32_t>(shard)};
      placer_->track(partition, now, routed);
      if (placer_->should_replicate(partition, now, result_bytes)) {
        install_replica(shard);
      }
    }
  }

  for (const auto& [shard, db] : local) {
    QueryResponseBody body = local_partials(*db, intervals, locations);
    if (placer_ != nullptr) {
      std::uint64_t result_bytes = 0;
      for (const QueryResponseBody::Partial& partial : body.partials) {
        result_bytes += partial.summary.size();
      }
      placer_->observe_local(PartitionId{static_cast<std::uint32_t>(shard)},
                             transport_->now(), result_bytes);
    }
    responses.emplace_back(shard, std::move(body));
  }

  // Fold exactly as FlowDB::merged folds: stage 1 finishes by merging each
  // location's partials in shard order (shared location); stage 2 merges the
  // per-location trees in sorted location order (shared time). std::map
  // iteration gives the sorted order.
  std::map<std::string, std::vector<std::pair<std::size_t, const std::vector<std::uint8_t>*>>>
      by_location;
  for (const auto& [shard, body] : responses) {
    for (const QueryResponseBody::Partial& partial : body.partials) {
      by_location[partial.location].emplace_back(shard, &partial.summary);
    }
  }
  flowtree::Flowtree result(options_.tree_config);
  for (auto& [location, parts] : by_location) {
    std::sort(parts.begin(), parts.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    flowtree::Flowtree per_location(options_.tree_config);
    for (const auto& [shard, bytes] : parts) {
      per_location.merge(
          flowtree::Flowtree::decode(*bytes, options_.tree_config));
    }
    result.merge(per_location);
  }
  return result;
}

std::uint64_t Coordinator::remote_shard_queries() const {
  const MutexLock lock(mu_);
  return remote_shard_queries_;
}

std::uint64_t Coordinator::local_shard_queries() const {
  const MutexLock lock(mu_);
  return local_shard_queries_;
}

std::size_t Coordinator::replicated_partitions() const {
  const MutexLock lock(mu_);
  return replicas_.size();
}

std::uint64_t Coordinator::dropped_messages() const {
  const MutexLock lock(mu_);
  return dropped_messages_;
}

}  // namespace megads::flowdb::dist
