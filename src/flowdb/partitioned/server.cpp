#include "flowdb/partitioned/server.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "flowtree/flatblock.hpp"

namespace megads::flowdb::dist {

namespace {

/// Content key of one stage-1 partial: db version, the selection verbatim,
/// and the partial's location — all length-delimited, so distinct selections
/// cannot collide.
std::string memo_key(std::uint64_t version, const SelectionBody& body,
                     const std::string& location) {
  std::string key;
  const auto put_u64 = [&key](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      key.push_back(static_cast<char>(v >> (8 * i)));
    }
  };
  put_u64(version);
  put_u64(body.intervals.size());
  for (const TimeInterval& interval : body.intervals) {
    put_u64(static_cast<std::uint64_t>(interval.begin));
    put_u64(static_cast<std::uint64_t>(interval.end));
  }
  put_u64(body.locations.size());
  for (const std::string& name : body.locations) {
    put_u64(name.size());
    key += name;
  }
  put_u64(location.size());
  key += location;
  return key;
}

}  // namespace

PartitionServer::PartitionServer(net::Transport& transport, NodeId node,
                                 flowtree::FlowtreeConfig tree_config)
    : transport_(&transport), node_(node), db_(tree_config) {
  transport_->bind(node_, [this](NodeId from,
                                 const std::vector<std::uint8_t>& payload,
                                 SimTime /*now*/) { on_message(from, payload); });
}

PartitionServer::~PartitionServer() { transport_->unbind(node_); }

std::uint64_t PartitionServer::raw_bytes() const {
  const MutexLock lock(raw_mu_);
  return raw_bytes_;
}

std::uint64_t PartitionServer::dropped_messages() const {
  const MutexLock lock(raw_mu_);
  return dropped_messages_;
}

std::uint64_t PartitionServer::response_memo_hits() const {
  const MutexLock lock(memo_mu_);
  return memo_hits_;
}

std::uint64_t PartitionServer::response_memo_misses() const {
  const MutexLock lock(memo_mu_);
  return memo_misses_;
}

void PartitionServer::set_response_memo_budget(std::size_t bytes) {
  const MutexLock lock(memo_mu_);
  response_memo_.set_byte_budget(bytes, memo_mu_);
}

void PartitionServer::on_message(NodeId from,
                                 const std::vector<std::uint8_t>& payload) {
  // Like the coordinator, a delivery callback never throws on stray traffic:
  // corrupt payloads and response-type envelopes are counted and dropped.
  Envelope envelope;
  try {
    envelope = decode(payload);
  } catch (const ParseError&) {
    const MutexLock lock(raw_mu_);
    note_dropped();
    return;
  }
  switch (envelope.type) {
    case MessageType::kAddBatch:
      handle_add(std::get<AddBatchBody>(envelope.body));
      return;
    case MessageType::kQueryRequest:
      handle_query(from, envelope.request_id,
                   std::get<SelectionBody>(envelope.body));
      return;
    case MessageType::kReplicaFetch:
      handle_replica_fetch(from, envelope.request_id,
                           std::get<SelectionBody>(envelope.body));
      return;
    case MessageType::kQueryResponse:
    case MessageType::kReplicaData:
      break;  // response-type envelopes never address a server
  }
  const MutexLock lock(raw_mu_);
  note_dropped();
}

void PartitionServer::note_dropped() {
  ++dropped_messages_;
  if (metric_dropped_ != nullptr) metric_dropped_->add(1);
}

void PartitionServer::attach_metrics(metrics::MetricsRegistry& registry) {
  metrics::Counter& dropped = registry.counter("net.dropped_server");
  const MutexLock lock(raw_mu_);
  metric_dropped_ = &dropped;
  metric_dropped_->add(dropped_messages_);  // catch up on pre-attach drops
}

void PartitionServer::handle_add(const AddBatchBody& body) {
  for (const SummaryRecord& record : body.records) {
    // One bad record must not poison the batch (or escape through the
    // transport's delivery callback): count it dropped, index the rest.
    try {
      db_.add_encoded(record.summary, record.interval, record.location);
    } catch (const Error&) {
      const MutexLock lock(raw_mu_);
      note_dropped();
      continue;
    }
    const MutexLock lock(raw_mu_);
    raw_.push_back(record);
    raw_bytes_ += record.summary.size();
  }
}

void PartitionServer::handle_query(NodeId from, std::uint64_t request_id,
                                   const SelectionBody& body) {
  // One partial per matched location: this shard's stage-1 fold (over-time
  // merge, shared location), encoded as a flat block the coordinator folds —
  // or hands out — without decoding. Two caches stack: the encoded-partial
  // memo answers a repeated selection with the finished wire bytes (the db
  // version is read *before* the fold, so a racing add can only make a
  // memoized entry fresher than its key, never staler); misses fall through
  // to FlowDB's content-addressed view cache, paying only the encode.
  QueryResponseBody response;
  const std::uint64_t version = db_.version();
  for (const std::string& location :
       db_.matching_locations(body.intervals, body.locations)) {
    const std::string key = memo_key(version, body, location);
    bool hit = false;
    {
      const MutexLock lock(memo_mu_);
      if (response_memo_.byte_budget(memo_mu_) > 0) {
        if (const auto* cached = response_memo_.get(key, memo_mu_)) {
          ++memo_hits_;
          response.partials.push_back({location, *cached});
          hit = true;
        } else {
          ++memo_misses_;
        }
      }
    }
    if (hit) continue;
    std::vector<std::uint8_t> bytes =
        flowtree::FlatCodec::encode(db_.merged(body.intervals, {location}));
    {
      const MutexLock lock(memo_mu_);
      response_memo_.put(key, bytes, key.size() + bytes.size(), memo_mu_);
    }
    response.partials.push_back({location, std::move(bytes)});
  }
  Envelope reply;
  reply.type = MessageType::kQueryResponse;
  reply.request_id = request_id;
  reply.body = std::move(response);
  transport_->send_message(node_, from, encode(reply));
}

void PartitionServer::handle_replica_fetch(NodeId from, std::uint64_t request_id,
                                           const SelectionBody& body) {
  const auto wanted_time = [&](const TimeInterval& interval) {
    if (body.intervals.empty()) return true;
    return std::any_of(body.intervals.begin(), body.intervals.end(),
                       [&](const TimeInterval& w) { return w.overlaps(interval); });
  };
  const auto wanted_location = [&](const std::string& location) {
    if (body.locations.empty()) return true;
    return std::find(body.locations.begin(), body.locations.end(), location) !=
           body.locations.end();
  };
  AddBatchBody data;
  {
    const MutexLock lock(raw_mu_);
    for (const SummaryRecord& record : raw_) {
      if (wanted_time(record.interval) && wanted_location(record.location)) {
        data.records.push_back(record);
      }
    }
  }
  Envelope reply;
  reply.type = MessageType::kReplicaData;
  reply.request_id = request_id;
  reply.body = std::move(data);
  transport_->send_message(node_, from, encode(reply));
}

}  // namespace megads::flowdb::dist
