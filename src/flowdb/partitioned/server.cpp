#include "flowdb/partitioned/server.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"

namespace megads::flowdb::dist {

PartitionServer::PartitionServer(net::Transport& transport, NodeId node,
                                 flowtree::FlowtreeConfig tree_config)
    : transport_(&transport), node_(node), db_(tree_config) {
  transport_->bind(node_, [this](NodeId from,
                                 const std::vector<std::uint8_t>& payload,
                                 SimTime /*now*/) { on_message(from, payload); });
}

PartitionServer::~PartitionServer() { transport_->unbind(node_); }

std::uint64_t PartitionServer::raw_bytes() const {
  const MutexLock lock(raw_mu_);
  return raw_bytes_;
}

std::uint64_t PartitionServer::dropped_messages() const {
  const MutexLock lock(raw_mu_);
  return dropped_messages_;
}

void PartitionServer::on_message(NodeId from,
                                 const std::vector<std::uint8_t>& payload) {
  // Like the coordinator, a delivery callback never throws on stray traffic:
  // corrupt payloads and response-type envelopes are counted and dropped.
  Envelope envelope;
  try {
    envelope = decode(payload);
  } catch (const ParseError&) {
    const MutexLock lock(raw_mu_);
    note_dropped();
    return;
  }
  switch (envelope.type) {
    case MessageType::kAddBatch:
      handle_add(std::get<AddBatchBody>(envelope.body));
      return;
    case MessageType::kQueryRequest:
      handle_query(from, envelope.request_id,
                   std::get<SelectionBody>(envelope.body));
      return;
    case MessageType::kReplicaFetch:
      handle_replica_fetch(from, envelope.request_id,
                           std::get<SelectionBody>(envelope.body));
      return;
    case MessageType::kQueryResponse:
    case MessageType::kReplicaData:
      break;  // response-type envelopes never address a server
  }
  const MutexLock lock(raw_mu_);
  note_dropped();
}

void PartitionServer::note_dropped() {
  ++dropped_messages_;
  if (metric_dropped_ != nullptr) metric_dropped_->add(1);
}

void PartitionServer::attach_metrics(metrics::MetricsRegistry& registry) {
  metrics::Counter& dropped = registry.counter("net.dropped_server");
  const MutexLock lock(raw_mu_);
  metric_dropped_ = &dropped;
  metric_dropped_->add(dropped_messages_);  // catch up on pre-attach drops
}

void PartitionServer::handle_add(const AddBatchBody& body) {
  for (const SummaryRecord& record : body.records) {
    db_.add_encoded(record.summary, record.interval, record.location);
    const MutexLock lock(raw_mu_);
    raw_.push_back(record);
    raw_bytes_ += record.summary.size();
  }
}

void PartitionServer::handle_query(NodeId from, std::uint64_t request_id,
                                   const SelectionBody& body) {
  // One partial per matched location: this shard's stage-1 fold (over-time
  // merge, shared location). The per-location merged() calls go through the
  // view cache, so a repeated selection — the dashboard pattern — answers
  // from cached folds without touching the node pools.
  QueryResponseBody response;
  for (const std::string& location :
       db_.matching_locations(body.intervals, body.locations)) {
    response.partials.push_back(
        {location, db_.merged(body.intervals, {location}).encode()});
  }
  Envelope reply;
  reply.type = MessageType::kQueryResponse;
  reply.request_id = request_id;
  reply.body = std::move(response);
  transport_->send_message(node_, from, encode(reply));
}

void PartitionServer::handle_replica_fetch(NodeId from, std::uint64_t request_id,
                                           const SelectionBody& body) {
  const auto wanted_time = [&](const TimeInterval& interval) {
    if (body.intervals.empty()) return true;
    return std::any_of(body.intervals.begin(), body.intervals.end(),
                       [&](const TimeInterval& w) { return w.overlaps(interval); });
  };
  const auto wanted_location = [&](const std::string& location) {
    if (body.locations.empty()) return true;
    return std::find(body.locations.begin(), body.locations.end(), location) !=
           body.locations.end();
  };
  AddBatchBody data;
  {
    const MutexLock lock(raw_mu_);
    for (const SummaryRecord& record : raw_) {
      if (wanted_time(record.interval) && wanted_location(record.location)) {
        data.records.push_back(record);
      }
    }
  }
  Envelope reply;
  reply.type = MessageType::kReplicaData;
  reply.request_id = request_id;
  reply.body = std::move(data);
  transport_->send_message(node_, from, encode(reply));
}

}  // namespace megads::flowdb::dist
