// Partitioning strategies of the partitioned FlowDB. A Partitioner is a pure
// function from summary metadata to a shard index — routing depends only on
// (interval, location, partition count), never on arrival order or on what a
// shard already holds, so any node (coordinator, ingest pipeline, test) can
// compute the same placement independently.
//
// Strategy menu (mirroring the term/document/block choices of RDMA inverted
// indexes — same data, different scatter fan-out):
//   * TimePartitioner     — shard by epoch window: round-robin over windows of
//                           interval.begin. Point-in-time queries touch few
//                           shards; one location's history spreads over all.
//   * LocationPartitioner — shard by location hash: a location's whole
//                           history lives in one shard, so per-location
//                           stage-1 folds never cross shards.
//   * PrefixPartitioner   — shard by location-name prefix (up to a
//                           delimiter): co-locates a site's sensors
//                           ("site3/rack1", "site3/rack2" → one shard).
//
// `targets()` narrows the scatter set for a selection; returning every shard
// is always correct, and strategies only narrow when the selection constrains
// their own routing feature.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace megads::flowdb::dist {

class Partitioner {
 public:
  virtual ~Partitioner() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Shard owning a summary with this metadata. Must be < `partitions`.
  [[nodiscard]] virtual std::size_t route(const TimeInterval& interval,
                                          const std::string& location,
                                          std::size_t partitions) const = 0;

  /// Shards that may own summaries matching the selection (empty intervals /
  /// locations = unconstrained). Sorted, deduplicated. Default: all shards.
  [[nodiscard]] virtual std::vector<std::size_t> targets(
      const std::vector<TimeInterval>& intervals,
      const std::vector<std::string>& locations, std::size_t partitions) const;
};

/// Round-robin over fixed windows of interval.begin.
///
/// Routing uses only interval.begin, but FlowDB matching is overlap-based: a
/// record whose interval crosses a window boundary lives on the shard of its
/// begin window yet matches selections over later windows. `max_record_span`
/// is the contract that keeps targets() sound anyway — the longest record
/// interval that may be indexed. route() rejects longer records
/// (PreconditionError), and targets() extends every selection interval
/// backward by `max_record_span - 1` so the begin windows of all possibly
/// overlapping records are covered. Pass kUnboundedRecordSpan to accept any
/// record length; targets() then scatters to every shard, because no sound
/// narrowing exists for unbounded spans.
class TimePartitioner final : public Partitioner {
 public:
  /// max_record_span sentinel: records of any length route, every selection
  /// targets all shards.
  static constexpr SimDuration kUnboundedRecordSpan = 0;

  /// `max_record_span` defaults to one window — records may cross one
  /// boundary, and every selection reaches one extra window backward.
  explicit TimePartitioner(SimDuration window = kHour);
  TimePartitioner(SimDuration window, SimDuration max_record_span);

  [[nodiscard]] std::string name() const override { return "by-time"; }
  /// Rejects records longer than max_record_span (unless unbounded).
  [[nodiscard]] std::size_t route(const TimeInterval& interval,
                                  const std::string& location,
                                  std::size_t partitions) const override;
  /// Narrows by the intervals: the windows the selection overlaps, extended
  /// backward by max_record_span - 1 (all shards when the span is unbounded).
  [[nodiscard]] std::vector<std::size_t> targets(
      const std::vector<TimeInterval>& intervals,
      const std::vector<std::string>& locations,
      std::size_t partitions) const override;

  [[nodiscard]] SimDuration window() const noexcept { return window_; }
  [[nodiscard]] SimDuration max_record_span() const noexcept {
    return max_record_span_;
  }

 private:
  [[nodiscard]] std::size_t shard_of_window(std::int64_t window_index,
                                            std::size_t partitions) const;
  SimDuration window_;
  SimDuration max_record_span_;
};

/// Hash of the full location name.
class LocationPartitioner final : public Partitioner {
 public:
  [[nodiscard]] std::string name() const override { return "by-location"; }
  [[nodiscard]] std::size_t route(const TimeInterval& interval,
                                  const std::string& location,
                                  std::size_t partitions) const override;
  /// Narrows by the named locations.
  [[nodiscard]] std::vector<std::size_t> targets(
      const std::vector<TimeInterval>& intervals,
      const std::vector<std::string>& locations,
      std::size_t partitions) const override;
};

/// Hash of the location name up to (excluding) the first delimiter — the
/// "site" of a hierarchical sensor name. Locations without the delimiter
/// hash whole, so this degrades to LocationPartitioner on flat names.
class PrefixPartitioner final : public Partitioner {
 public:
  explicit PrefixPartitioner(char delimiter = '/');

  [[nodiscard]] std::string name() const override { return "by-prefix"; }
  [[nodiscard]] std::size_t route(const TimeInterval& interval,
                                  const std::string& location,
                                  std::size_t partitions) const override;
  [[nodiscard]] std::vector<std::size_t> targets(
      const std::vector<TimeInterval>& intervals,
      const std::vector<std::string>& locations,
      std::size_t partitions) const override;

 private:
  char delimiter_;
};

/// Factory by strategy name ("by-time" / "by-location" / "by-prefix"), for
/// benches and examples taking the strategy from the command line.
[[nodiscard]] std::unique_ptr<Partitioner> make_partitioner(
    const std::string& name);

}  // namespace megads::flowdb::dist
