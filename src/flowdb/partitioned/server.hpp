// PartitionServer — one shard of the partitioned FlowDB. Hosts a full FlowDB
// (summary index + the PR 5 content-addressed view cache, so repeated
// scatter selections hit per-partition) behind a Transport message handler:
//
//   kAddBatch      -> index every record (no reply)
//   kQueryRequest  -> per matched location, the stage-1 fold of this shard's
//                     epochs, encoded, in one kQueryResponse
//   kReplicaFetch  -> the raw summary records matching the selection, in one
//                     kReplicaData (the ski-rental "buy": the requester
//                     installs them as a local replica)
//
// The server never initiates traffic; it only answers. All state is
// internally synchronized, so a thread-safe transport (Loopback) may deliver
// from several querier threads at once.
#pragma once

#include <mutex>
#include <vector>

#include "flowdb/flowdb.hpp"
#include "flowdb/partitioned/envelope.hpp"
#include "net/transport.hpp"

namespace megads::flowdb::dist {

class PartitionServer {
 public:
  /// Binds `node` on `transport`; both must outlive the server.
  PartitionServer(net::Transport& transport, NodeId node,
                  flowtree::FlowtreeConfig tree_config = {});
  ~PartitionServer();

  // The transport handler captures `this`.
  PartitionServer(const PartitionServer&) = delete;
  PartitionServer& operator=(const PartitionServer&) = delete;

  [[nodiscard]] NodeId node() const noexcept { return node_; }

  /// The shard's index — for cache budgets, thread pools, metrics, and test
  /// introspection. Internally synchronized like any FlowDB.
  [[nodiscard]] FlowDB& db() noexcept { return db_; }
  [[nodiscard]] const FlowDB& db() const noexcept { return db_; }

  /// Total encoded bytes of the raw records held (the ski-rental partition
  /// size: what a replica copy would ship).
  [[nodiscard]] std::uint64_t raw_bytes() const;

  /// Stray / malformed messages received and dropped.
  [[nodiscard]] std::uint64_t dropped_messages() const;

 private:
  void on_message(NodeId from, const std::vector<std::uint8_t>& payload);
  void handle_add(const AddBatchBody& body);
  void handle_query(NodeId from, std::uint64_t request_id,
                    const SelectionBody& body);
  void handle_replica_fetch(NodeId from, std::uint64_t request_id,
                            const SelectionBody& body);

  net::Transport* transport_;
  NodeId node_;
  FlowDB db_;

  /// Raw records as received, for replica copies — the index alone cannot
  /// reproduce the original per-summary granularity.
  mutable std::mutex raw_mu_;
  std::vector<SummaryRecord> raw_;
  std::uint64_t raw_bytes_ = 0;
  std::uint64_t dropped_messages_ = 0;
};

}  // namespace megads::flowdb::dist
