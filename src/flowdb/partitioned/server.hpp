// PartitionServer — one shard of the partitioned FlowDB. Hosts a full FlowDB
// (summary index + the PR 5 content-addressed view cache, so repeated
// scatter selections hit per-partition) behind a Transport message handler:
//
//   kAddBatch      -> index every record (no reply)
//   kQueryRequest  -> per matched location, the stage-1 fold of this shard's
//                     epochs, encoded, in one kQueryResponse
//   kReplicaFetch  -> the raw summary records matching the selection, in one
//                     kReplicaData (the ski-rental "buy": the requester
//                     installs them as a local replica)
//
// The server never initiates traffic; it only answers. All state is
// internally synchronized, so a thread-safe transport (Loopback) may deliver
// from several querier threads at once.
#pragma once

#include <string>
#include <vector>

#include "common/lru_cache.hpp"
#include "common/mutex.hpp"
#include "flowdb/flowdb.hpp"
#include "flowdb/partitioned/envelope.hpp"
#include "net/transport.hpp"

namespace megads::flowdb::dist {

class PartitionServer {
 public:
  /// Binds `node` on `transport`; both must outlive the server.
  PartitionServer(net::Transport& transport, NodeId node,
                  flowtree::FlowtreeConfig tree_config = {});
  ~PartitionServer();

  // The transport handler captures `this`.
  PartitionServer(const PartitionServer&) = delete;
  PartitionServer& operator=(const PartitionServer&) = delete;

  [[nodiscard]] NodeId node() const noexcept { return node_; }

  /// The shard's index — for cache budgets, thread pools, metrics, and test
  /// introspection. Internally synchronized like any FlowDB.
  [[nodiscard]] FlowDB& db() noexcept { return db_; }
  [[nodiscard]] const FlowDB& db() const noexcept { return db_; }

  /// Total encoded bytes of the raw records held (the ski-rental partition
  /// size: what a replica copy would ship).
  [[nodiscard]] std::uint64_t raw_bytes() const;

  /// Stray / malformed messages received and dropped — including kAddBatch
  /// records whose payload fails to parse or merge (counted per record, the
  /// rest of the batch still indexes).
  [[nodiscard]] std::uint64_t dropped_messages() const;

  /// Encoded-partial memo behaviour: a hit answers a repeated scatter
  /// selection with the cached flat bytes — no fold, no encode, no node pool.
  [[nodiscard]] std::uint64_t response_memo_hits() const;
  [[nodiscard]] std::uint64_t response_memo_misses() const;
  /// Byte budget of the encoded-partial memo (LRU; 0 disables and clears).
  void set_response_memo_budget(std::size_t bytes);

  /// Mirror the drop counter into `registry` as "net.dropped_server"
  /// (cumulative across every server attached to the same registry). The
  /// registry must outlive the server.
  void attach_metrics(metrics::MetricsRegistry& registry);

 private:
  void on_message(NodeId from, const std::vector<std::uint8_t>& payload)
      MEGADS_EXCLUDES(raw_mu_);
  void handle_add(const AddBatchBody& body) MEGADS_EXCLUDES(raw_mu_);
  void handle_query(NodeId from, std::uint64_t request_id,
                    const SelectionBody& body);
  void handle_replica_fetch(NodeId from, std::uint64_t request_id,
                            const SelectionBody& body) MEGADS_EXCLUDES(raw_mu_);
  /// Count one dropped stray message (and mirror it into the registry).
  void note_dropped() MEGADS_REQUIRES(raw_mu_);

  net::Transport* transport_;
  NodeId node_;
  FlowDB db_;

  /// Raw records as received, for replica copies — the index alone cannot
  /// reproduce the original per-summary granularity.
  mutable Mutex raw_mu_{lockrank::kPartitionServer, "partition_server.raw"};
  std::vector<SummaryRecord> raw_ MEGADS_GUARDED_BY(raw_mu_);
  std::uint64_t raw_bytes_ MEGADS_GUARDED_BY(raw_mu_) = 0;
  std::uint64_t dropped_messages_ MEGADS_GUARDED_BY(raw_mu_) = 0;
  metrics::Counter* metric_dropped_ MEGADS_GUARDED_BY(raw_mu_) = nullptr;

  /// Encoded stage-1 partials, keyed (db version, selection, location): the
  /// dashboard pattern re-issues the same selection, and a hit hands back the
  /// flat wire bytes without touching FlowDB at all. Entries self-invalidate
  /// — every add bumps the db version, which changes the key. Innermost lock
  /// (kLeaf): never held across a db_ call or a transport send.
  mutable Mutex memo_mu_{lockrank::kLeaf, "partition_server.response_memo"};
  mutable LruCache<std::string, std::vector<std::uint8_t>> response_memo_
      MEGADS_GUARDED_BY(memo_mu_){8u << 20};
  mutable std::uint64_t memo_hits_ MEGADS_GUARDED_BY(memo_mu_) = 0;
  mutable std::uint64_t memo_misses_ MEGADS_GUARDED_BY(memo_mu_) = 0;
};

}  // namespace megads::flowdb::dist
