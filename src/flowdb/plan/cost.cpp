#include "flowdb/plan/cost.hpp"

#include <algorithm>

namespace megads::flowdb::plan {

void CostModel::refresh(const metrics::Snapshot& snapshot) {
  if (const auto* entry = snapshot.find("flowdb.view_cache_hit_ratio")) {
    inputs.view_cache_hit_rate = std::clamp(entry->value, 0.0, 1.0);
  }
  const double flat = snapshot.value("flowdb.decode_hits", 0.0);
  const double decoded = snapshot.value("flowdb.decode_misses", 0.0);
  if (flat + decoded > 0.0) {
    inputs.decode_rate = decoded / (flat + decoded);
  }
}

double CostModel::estimated_nodes(const PlanProbe& probe) const {
  const double summaries =
      std::max<double>(1.0, static_cast<double>(probe.summary_count));
  return summaries * inputs.nodes_per_summary;
}

double CostModel::fold_cost(const PlanProbe& probe) const {
  const double summaries =
      std::max<double>(1.0, static_cast<double>(probe.summary_count));
  const double per_node = inputs.flat_read_ns_per_node +
                          inputs.decode_rate * (inputs.decode_ns_per_node -
                                                inputs.flat_read_ns_per_node);
  return summaries * inputs.merge_ns_per_summary +
         estimated_nodes(probe) * per_node + probe.scatter_transfer_cost;
}

double CostModel::cached_cost(const PlanProbe& probe) const {
  if (probe.full_view_cached) return inputs.view_hit_ns;
  const double hit = inputs.view_cache_hit_rate;
  return hit * inputs.view_hit_ns +
         (1.0 - hit) * (fold_cost(probe) + populate_cost(probe));
}

double CostModel::read_only_cost(const PlanProbe& probe) const {
  if (probe.full_view_cached) return inputs.view_hit_ns;
  const double hit = inputs.view_cache_hit_rate;
  return hit * inputs.view_hit_ns + (1.0 - hit) * fold_cost(probe);
}

double CostModel::populate_cost(const PlanProbe& probe) const {
  return estimated_nodes(probe) * inputs.cache_insert_ns_per_node;
}

double CostModel::populate_gain(const PlanProbe& probe) const {
  // A populated entry turns the next identical selection's fold into a view
  // handout; the gain is that saving discounted by how likely a repeat is,
  // for which the observed global hit rate is the planner's proxy.
  return inputs.view_cache_hit_rate *
         (fold_cost(probe) - inputs.view_hit_ns);
}

}  // namespace megads::flowdb::plan
