// Plan cost model (docs/PLANNING.md). Prices the candidate access paths the
// planner chooses between, from per-operator rates the metrics registry
// already carries: the view-cache hit ratio from PR 5, the decode-vs-flat
// split from E13, and the coordinator's unloaded transfer costs (carried on
// the PlanProbe). Costs are estimates in nanoseconds — they rank candidates,
// they never change results, so a stale or default-seeded model only costs
// performance.
#pragma once

#include <cstddef>

#include "common/metrics.hpp"
#include "flowdb/source.hpp"

namespace megads::flowdb::plan {

/// Tunable per-operation rates. Defaults are the RelWithDebInfo medians from
/// bench_query_cache / bench_flatblock on the dev box; refresh() replaces
/// the observed ones with live registry readings.
struct CostInputs {
  /// Stage-1 fold cost per input summary (Table II merge of one tree).
  double merge_ns_per_summary = 2000.0;
  /// O(1) copy-on-write handout of a cached view.
  double view_hit_ns = 600.0;
  /// Inserting one fold product into the view/block cache, per node.
  double cache_insert_ns_per_node = 8.0;
  /// Reading one node of a flat block in place (E13 flat path).
  double flat_read_ns_per_node = 4.0;
  /// Decoding one node of a legacy payload before folding (E13 slow path).
  double decode_ns_per_node = 40.0;
  /// Nodes a folded selection is expected to hold (per summary folded).
  double nodes_per_summary = 64.0;
  /// Observed view-cache hit ratio (flowdb.view_cache_hit_ratio).
  double view_cache_hit_rate = 0.0;
  /// Observed fraction of response partials needing a legacy decode.
  double decode_rate = 0.0;
};

class CostModel {
 public:
  CostInputs inputs;

  /// Replace observed rates with live readings from a registry snapshot
  /// (unknown names keep their current value, so a cold registry is safe).
  void refresh(const metrics::Snapshot& snapshot);

  /// Fold cost of a selection that misses every cache: stage-1 merges plus
  /// the per-node read cost of the partials (flat or decoded per the
  /// observed decode rate).
  [[nodiscard]] double fold_cost(const PlanProbe& probe) const;
  /// Expected cost of the default cached path: hit-rate-weighted blend of a
  /// view handout and a miss that folds then pays the cache insert.
  [[nodiscard]] double cached_cost(const PlanProbe& probe) const;
  /// Cost of a read-only fold (no cache insert on miss).
  [[nodiscard]] double read_only_cost(const PlanProbe& probe) const;
  /// One-time cost of populating the cache with this selection's product.
  [[nodiscard]] double populate_cost(const PlanProbe& probe) const;
  /// Expected saving of having this selection cached for its *next* run.
  [[nodiscard]] double populate_gain(const PlanProbe& probe) const;

 private:
  [[nodiscard]] double estimated_nodes(const PlanProbe& probe) const;
};

}  // namespace megads::flowdb::plan
