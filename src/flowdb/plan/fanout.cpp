#include "flowdb/plan/fanout.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace megads::flowdb::plan {

void FanOutPlanner::note_routed(std::size_t shard,
                                const TimeInterval& interval,
                                const std::string& location) {
  expects(shard < shards_.size(), "FanOutPlanner: shard out of range");
  ShardManifest& manifest = shards_[shard];
  const auto it = manifest.locations.find(location);
  if (it == manifest.locations.end()) {
    manifest.locations.emplace(location, LocationSpan{interval, 1});
  } else {
    it->second.span = it->second.span.span(interval);
    ++it->second.records;
  }
}

std::uint64_t FanOutPlanner::shard_matches(
    std::size_t shard, const std::vector<TimeInterval>& intervals,
    const std::vector<std::string>& locations) const {
  std::uint64_t records = 0;
  const ShardManifest& manifest = shards_[shard];
  for (const auto& [location, entry] : manifest.locations) {
    if (!locations.empty() &&
        std::find(locations.begin(), locations.end(), location) ==
            locations.end()) {
      continue;
    }
    if (intervals.empty()) {
      records += entry.records;
      continue;
    }
    for (const TimeInterval& iv : intervals) {
      if (entry.span.overlaps(iv)) {
        records += entry.records;
        break;
      }
    }
  }
  return records;
}

FanOutPlanner::Decision FanOutPlanner::decide(
    const dist::Partitioner& partitioner,
    const std::vector<TimeInterval>& intervals,
    const std::vector<std::string>& locations, std::size_t partitions,
    bool manifest_exact) const {
  Decision decision;
  decision.targets = partitioner.targets(intervals, locations, partitions);
  decision.partitioner_targets = decision.targets.size();
  if (!manifest_exact) {
    for (const std::size_t shard : decision.targets) {
      if (shard < shards_.size()) {
        decision.est_records += shard_matches(shard, intervals, locations);
      }
    }
    return decision;
  }
  std::erase_if(decision.targets, [&](std::size_t shard) {
    if (shard >= shards_.size()) return true;
    const std::uint64_t records = shard_matches(shard, intervals, locations);
    decision.est_records += records;
    return records == 0;
  });
  decision.manifest_pruned =
      decision.partitioner_targets - decision.targets.size();
  return decision;
}

std::size_t FanOutPlanner::shard_location_count(std::size_t shard) const {
  return shard < shards_.size() ? shards_[shard].locations.size() : 0;
}

}  // namespace megads::flowdb::plan
