// Per-query scatter fan-out (docs/PLANNING.md). The Partitioner's targets()
// narrows a scatter only by its own routing feature — a by-time partitioner
// cannot prune on location, so `WHERE location = 'x'` over an unconstrained
// window still broadcasts. The FanOutPlanner closes that gap with a manifest
// of what was actually routed to each shard: per (shard, location) the span
// of every record interval this coordinator sent there. A shard with no
// manifest entry overlapping the selection provably holds nothing matching
// it — *provided this coordinator is the shards' only ingest route*, which
// is the deployment every test, bench, and example in this repo uses. A
// coordinator configured with Options::assume_external_ingest keeps the
// partitioner-global decision (manifest narrowing off, still correct).
//
// The manifest is an over-approximation in the safe direction: spans only
// grow, locations are never removed, and decide() intersects the
// partitioner's (sound) target set with the manifest's (sound under the
// sole-ingest assumption) — so the result can only shed shards whose
// partials would be empty, never shards contributing to the fold. That is
// the invariant the planner equivalence suites pin byte-identically.
//
// Not thread-safe by itself: the Coordinator owns one instance guarded by
// its mu_ (note_routed runs inside route_record, decide under the same lock
// in gather/plan_probe), which also gives decide() a consistent snapshot.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "flowdb/partitioned/partitioner.hpp"

namespace megads::flowdb::plan {

class FanOutPlanner {
 public:
  explicit FanOutPlanner(std::size_t shards) : shards_(shards) {}

  /// Record that a summary covering `interval` at `location` was routed to
  /// `shard`. Called on every ingest (cheap: a map lookup + span union).
  void note_routed(std::size_t shard, const TimeInterval& interval,
                   const std::string& location);

  struct Decision {
    /// Final scatter set — sorted, deduplicated, always a subset of the
    /// partitioner-global target set.
    std::vector<std::size_t> targets;
    /// Size of the partitioner-global set (the pre-planner scatter).
    std::size_t partitioner_targets = 0;
    /// Shards the manifest shed versus that baseline.
    std::size_t manifest_pruned = 0;
    /// Upper bound on routed records the kept shards hold for the selection
    /// (per-location counts whose span overlaps) — the planner's
    /// summary-count estimate.
    std::uint64_t est_records = 0;
  };

  /// The per-query scatter decision: the partitioner's target set,
  /// intersected (when `manifest_exact`) with the shards whose manifest
  /// shows at least one routed record matching the selection. Empty
  /// `intervals` / `locations` mean unconstrained, as everywhere else.
  [[nodiscard]] Decision decide(const dist::Partitioner& partitioner,
                                const std::vector<TimeInterval>& intervals,
                                const std::vector<std::string>& locations,
                                std::size_t partitions,
                                bool manifest_exact) const;

  /// Locations ever routed to `shard` (introspection for tests).
  [[nodiscard]] std::size_t shard_location_count(std::size_t shard) const;

 private:
  struct LocationSpan {
    TimeInterval span;
    std::uint64_t records = 0;
  };
  /// Routed records the shard may hold for the selection (0 = provably
  /// none, which is what decide() prunes on).
  [[nodiscard]] std::uint64_t shard_matches(
      std::size_t shard, const std::vector<TimeInterval>& intervals,
      const std::vector<std::string>& locations) const;

  struct ShardManifest {
    /// location -> span + count of every record routed there.
    std::map<std::string, LocationSpan> locations;
  };
  std::vector<ShardManifest> shards_;
};

}  // namespace megads::flowdb::plan
