#include "flowdb/plan/planner.hpp"

#include <cstdio>
#include <future>
#include <utility>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "flowdb/executor.hpp"
#include "flowdb/parser.hpp"

namespace megads::flowdb::plan {

namespace {

std::string format_ns(double ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.0f", ns);
  return buf;
}

std::string format_argument(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

}  // namespace

QueryPlanner::QueryPlanner(Options options)
    : options_(options), shapes_(options.shape_history_bytes) {}

Plan QueryPlanner::plan(const Statement& statement,
                        const SummarySource& source) {
  Plan plan;
  plan.statement = statement;
  plan.probe = source.plan_probe(statement.ranges, statement.locations);
  plan.shape = fold_shape(statement.ranges, statement.locations);
  plan.repeated = note_shape(plan.shape);
  plan.share =
      options_.enable_sharing && plan.probe.known && plan.probe.versioned;

  switch (options_.cache_mode) {
    case CacheModeOverride::kAlwaysPopulate:
      plan.cache_mode = CacheMode::kPopulate;
      break;
    case CacheModeOverride::kAlwaysReadOnly:
      plan.cache_mode = CacheMode::kReadOnly;
      break;
    case CacheModeOverride::kAuto:
      // Populate for anything with evidence of reuse (already cached, or a
      // shape this planner has seen before — "cache on second touch" keeps
      // one-off scans from churning the LRU). Otherwise populate only when
      // the expected reuse gain pays for the insert.
      plan.cache_mode =
          (!plan.probe.known || plan.probe.full_view_cached ||
           plan.repeated ||
           cost_.populate_gain(plan.probe) >= cost_.populate_cost(plan.probe))
              ? CacheMode::kPopulate
              : CacheMode::kReadOnly;
      break;
  }

  plan.est_naive_ns = cost_.cached_cost(plan.probe);
  plan.est_cost_ns = plan.cache_mode == CacheMode::kReadOnly
                         ? cost_.read_only_cost(plan.probe)
                         : plan.est_naive_ns;
  return plan;
}

Table QueryPlanner::run(const Statement& statement,
                        const SummarySource& source) {
  if (statement.explain) {
    Statement inner = statement;
    inner.explain = false;
    Plan the_plan = plan(inner, source);
    {
      const MutexLock lock(mu_);
      ++stats_.explains;
    }
    return explain_table(the_plan);
  }

  Plan the_plan;
  try {
    the_plan = plan(statement, source);
  } catch (...) {
    // Plan-or-fallback totality: a planning failure must never fail a query
    // the naive executor could answer.
    {
      const MutexLock lock(mu_);
      ++stats_.fallbacks;
      if (metric_fallbacks_ != nullptr) metric_fallbacks_->add(1);
    }
    return execute(statement, source);
  }
  return execute_plan(the_plan, source);
}

Table QueryPlanner::run(const std::string& statement,
                        const SummarySource& source) {
  return run(parse(statement), source);
}

Table QueryPlanner::execute_plan(const Plan& plan,
                                 const SummarySource& source) {
  const Statement& statement = plan.statement;
  {
    const MutexLock lock(mu_);
    ++stats_.planned;
    if (metric_queries_ != nullptr) metric_queries_->add(1);
    if (plan.cache_mode == CacheMode::kReadOnly) {
      ++stats_.read_only_folds;
      if (metric_read_only_ != nullptr) metric_read_only_->add(1);
    }
  }

  if (statement.op == OperatorKind::kDiff) {
    expects(statement.ranges.size() == 2, "FlowQL diff: exactly two ranges");
    // Same overlap structure as the naive executor: operand b on the
    // source's pool while this thread folds operand a. Each operand is its
    // own shareable fold (diff operands are the classic common sub-merge:
    // sliding diffs re-use the previous window).
    const auto operand = [&](std::size_t index, bool* was_shared) {
      const std::vector<TimeInterval> range{statement.ranges[index]};
      if (!plan.share) {
        return source.merged(range, statement.locations);
      }
      FoldKey key{&source, plan.probe.version, 1,
                  fold_shape(range, statement.locations)};
      return registry_.tree(
          key, [&] { return source.merged(range, statement.locations); },
          was_shared);
    };
    bool shared_a = false;
    bool shared_b = false;
    std::future<flowtree::Flowtree> b_future;
    if (ThreadPool* pool = source.merge_pool(); pool != nullptr) {
      b_future =
          pool->submit([&operand, &shared_b] { return operand(1, &shared_b); });
    }
    flowtree::Flowtree a = operand(0, &shared_a);
    const flowtree::Flowtree b =
        b_future.valid() ? b_future.get() : operand(1, &shared_b);
    note_shared(static_cast<std::uint64_t>(shared_a) +
                static_cast<std::uint64_t>(shared_b));
    return execute_diff(statement, std::move(a), b);
  }

  bool was_shared = false;
  const auto compute = [&] {
    return source.merged_view_hint(statement.ranges, statement.locations,
                                   plan.cache_mode);
  };
  flowtree::MergedView view =
      plan.share ? registry_.view(FoldKey{&source, plan.probe.version, 0,
                                          plan.shape},
                                  compute, &was_shared)
                 : compute();
  note_shared(was_shared ? 1 : 0);
  return execute_on_view(statement, view);
}

Table QueryPlanner::explain_table(const Plan& plan) {
  const Statement& statement = plan.statement;
  const PlanProbe& probe = plan.probe;
  Table table;
  table.columns = {"property", "value"};
  const auto row = [&table](std::string property, std::string value) {
    table.rows.push_back({std::move(property), std::move(value)});
  };

  row("operator", std::string(to_string(statement.op)) + "(" +
                      format_argument(statement.argument) + ")");
  row("selection", plan.shape);
  row("source", !probe.known ? "opaque"
                : probe.shards_total > 0
                    ? "partitioned(" + std::to_string(probe.shards_total) + ")"
                    : "single-node");
  if (probe.known) {
    row("summaries", std::to_string(probe.summary_count) + " in " +
                         std::to_string(probe.location_groups) +
                         " location group(s)");
  }
  if (statement.op == OperatorKind::kDiff) {
    row("access", "diff: two operand folds");
  } else if (probe.full_view_cached) {
    row("access", "view-cache hit");
  } else {
    row("access", plan.cache_mode == CacheMode::kReadOnly
                      ? "fold (cache read-only)"
                      : "fold (cache populate)");
  }
  row("share", plan.share ? "attach-if-in-flight" : "off");
  if (probe.shards_total > 0) {
    row("fan-out", std::to_string(probe.shards_selected) + "/" +
                       std::to_string(probe.shards_total) + " shard(s), " +
                       std::to_string(probe.local_shards) + " local, pruned " +
                       std::to_string(probe.shards_pruned) + " (partitioner " +
                       std::to_string(probe.shards_pruned +
                                      probe.shards_selected) +
                       ")");
  }
  row("est_cost_ns", format_ns(plan.est_cost_ns));
  row("est_naive_ns", format_ns(plan.est_naive_ns));
  return table;
}

void QueryPlanner::refresh_costs(const metrics::Snapshot& snapshot) {
  cost_.refresh(snapshot);
}

bool QueryPlanner::note_shape(const std::string& shape) {
  const MutexLock lock(mu_);
  if (std::uint64_t* count = shapes_.get(shape, mu_); count != nullptr) {
    ++*count;
    return true;
  }
  shapes_.put(shape, 1, shape.size() + sizeof(std::uint64_t), mu_);
  return false;
}

void QueryPlanner::note_shared(std::uint64_t n) {
  if (n == 0) return;
  const MutexLock lock(mu_);
  stats_.shared_folds += n;
  if (metric_shared_ != nullptr) metric_shared_->add(n);
}

QueryPlanner::Stats QueryPlanner::stats() const {
  const MutexLock lock(mu_);
  return stats_;
}

void QueryPlanner::attach_metrics(metrics::MetricsRegistry& registry) {
  const MutexLock lock(mu_);
  metric_queries_ = &registry.counter("plan.queries");
  metric_shared_ = &registry.counter("plan.shared_folds");
  metric_read_only_ = &registry.counter("plan.read_only_folds");
  metric_fallbacks_ = &registry.counter("plan.fallbacks");
  // Catch up on pre-attach activity so the registry stays cumulative.
  metric_queries_->add(stats_.planned);
  metric_shared_->add(stats_.shared_folds);
  metric_read_only_->add(stats_.read_only_folds);
  metric_fallbacks_->add(stats_.fallbacks);
}

}  // namespace megads::flowdb::plan
