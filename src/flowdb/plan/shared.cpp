#include "flowdb/plan/shared.hpp"

#include <exception>
#include <memory>
#include <utility>

namespace megads::flowdb::plan {

std::size_t FoldKeyHash::operator()(const FoldKey& key) const noexcept {
  // FNV-1a over the fields; the shape string dominates the entropy.
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= 1099511628211ULL;
    }
  };
  mix(reinterpret_cast<std::uintptr_t>(key.source));
  mix(key.version);
  mix(key.kind);
  for (const char c : key.shape) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return static_cast<std::size_t>(h);
}

std::string fold_shape(const std::vector<TimeInterval>& intervals,
                       const std::vector<std::string>& locations) {
  std::string shape;
  for (const TimeInterval& iv : intervals) {
    if (!shape.empty()) shape += ',';
    shape += std::to_string(iv.begin);
    shape += "..";
    shape += std::to_string(iv.end);
  }
  shape += '@';
  for (std::size_t i = 0; i < locations.size(); ++i) {
    if (i > 0) shape += '|';
    shape += locations[i];
  }
  return shape;
}

template <typename T>
T SharedFoldRegistry::run(FlightMap<T>& flights, const FoldKey& key,
                          const std::function<T()>& compute,
                          bool* was_shared) {
  std::shared_ptr<Flight<T>> flight;
  bool attached = false;
  {
    const MutexLock lock(mu_);
    ++stats_.folds;
    const auto it = flights.find(key);
    if (it != flights.end()) {
      flight = it->second;
      attached = true;
      ++stats_.shared;
    } else {
      flight = std::make_shared<Flight<T>>();
      flight->future = flight->promise.get_future().share();
      flights.emplace(key, flight);
    }
  }
  if (was_shared != nullptr) *was_shared = attached;
  if (attached) {
    // Waiters block on the future with no locks held; shared_future::get
    // rethrows the computing thread's exception, copies its value.
    return flight->future.get();
  }
  try {
    T result = compute();
    flight->promise.set_value(result);
    {
      const MutexLock lock(mu_);
      flights.erase(key);
    }
    return result;
  } catch (...) {
    flight->promise.set_exception(std::current_exception());
    const MutexLock lock(mu_);
    flights.erase(key);
    throw;
  }
}

flowtree::MergedView SharedFoldRegistry::view(
    const FoldKey& key, const std::function<flowtree::MergedView()>& compute,
    bool* was_shared) {
  return run(views_, key, compute, was_shared);
}

flowtree::Flowtree SharedFoldRegistry::tree(
    const FoldKey& key, const std::function<flowtree::Flowtree()>& compute,
    bool* was_shared) {
  return run(trees_, key, compute, was_shared);
}

SharedFoldRegistry::Stats SharedFoldRegistry::stats() const {
  const MutexLock lock(mu_);
  return stats_;
}

}  // namespace megads::flowdb::plan
