// Cross-query sub-merge sharing (docs/PLANNING.md): when concurrently
// admitted queries need the same fold — same source contents (entry-seq
// version) and same selection shape — only the first executes it; the rest
// attach a future to the in-flight result and receive a copy-on-write handle
// to the same product. This is the multi-query half of ROADMAP item 4, with
// the Benoit et al. framing: concurrent applications share operators instead
// of re-running them.
//
// Soundness: a fold key includes the source's content version, and summaries
// are immutable — two calls with equal keys observed identical summary sets,
// so handing the second caller the first's result is exact (the same
// argument that makes the PR 5 view cache invalidation-free). Sources that
// cannot version their contents never reach this registry (the planner
// disables sharing for them).
//
// Lifecycle: a slot lives only while its fold is in flight. The computing
// thread folds *without holding the registry lock* (waiters block on the
// future, not the mutex), publishes the result or the exception, and erases
// the slot — later identical queries go to the source's view cache instead.
// Exceptions propagate to every attached waiter.
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.hpp"
#include "common/types.hpp"
#include "flowtree/flatblock.hpp"
#include "flowtree/flowtree.hpp"

namespace megads::flowdb::plan {

/// Identity of one fold: which source, which contents, which selection.
struct FoldKey {
  /// Source identity (the planner uses the SummarySource address; sharing
  /// across distinct sources is never sound).
  const void* source = nullptr;
  /// Source content version — equal versions saw identical summary sets.
  std::uint64_t version = 0;
  /// 0 = full-selection view fold, 1 = diff operand (tree) fold.
  std::uint8_t kind = 0;
  /// Canonical selection shape: intervals + locations, rendered by
  /// fold_shape() so equal selections compare equal.
  std::string shape;

  friend bool operator==(const FoldKey&, const FoldKey&) = default;
};

struct FoldKeyHash {
  std::size_t operator()(const FoldKey& key) const noexcept;
};

/// Canonical selection-shape string for FoldKey (and the planner's repeat
/// history): "i0.begin..i0.end,...@loc0|loc1".
[[nodiscard]] std::string fold_shape(
    const std::vector<TimeInterval>& intervals,
    const std::vector<std::string>& locations);

class SharedFoldRegistry {
 public:
  struct Stats {
    /// Folds requested through the registry.
    std::uint64_t folds = 0;
    /// Requests that attached to an in-flight identical fold.
    std::uint64_t shared = 0;
  };

  /// The merged view for `key`: computes via `compute` if no identical fold
  /// is in flight, otherwise waits on the in-flight one. `*was_shared`
  /// (optional) reports whether this call attached rather than computed.
  [[nodiscard]] flowtree::MergedView view(
      const FoldKey& key,
      const std::function<flowtree::MergedView()>& compute,
      bool* was_shared = nullptr);

  /// Same, for tree-valued folds (diff operands).
  [[nodiscard]] flowtree::Flowtree tree(
      const FoldKey& key, const std::function<flowtree::Flowtree()>& compute,
      bool* was_shared = nullptr);

  [[nodiscard]] Stats stats() const;

 private:
  template <typename T>
  struct Flight {
    std::promise<T> promise;
    std::shared_future<T> future;
  };
  template <typename T>
  using FlightMap =
      std::unordered_map<FoldKey, std::shared_ptr<Flight<T>>, FoldKeyHash>;

  template <typename T>
  [[nodiscard]] T run(FlightMap<T>& flights, const FoldKey& key,
                      const std::function<T()>& compute, bool* was_shared);

  /// Held only around map bookkeeping, never across a fold (rank
  /// kPlanShared; the fold itself takes source locks of higher rank with
  /// nothing held).
  mutable Mutex mu_{lockrank::kPlanShared, "plan.shared"};
  FlightMap<flowtree::MergedView> views_ MEGADS_GUARDED_BY(mu_);
  FlightMap<flowtree::Flowtree> trees_ MEGADS_GUARDED_BY(mu_);
  Stats stats_ MEGADS_GUARDED_BY(mu_);
};

}  // namespace megads::flowdb::plan
