// Cost-based FlowQL query planner (docs/PLANNING.md, ROADMAP item 4). Sits
// between the FlowQL surface and the executor: for each statement it probes
// the SummarySource (plan_probe), prices the candidate access paths with the
// CostModel, and executes through the same operator renderers as the naive
// executor (execute_on_view / execute_diff) — so a planned result is
// byte-identical to a naive one by construction. What the planner chooses:
//
//   access     view-cache policy per fold: populate (the pre-planner
//              default) or read-only for predicted one-off selections —
//              scan resistance for the PR 5 cache. Decided by repeat
//              history + populate_cost vs populate_gain.
//   sharing    identical concurrent folds (same source version, same
//              selection shape) execute once via the SharedFoldRegistry;
//              the rest attach futures to the in-flight result.
//   fan-out    partitioned sources report their per-query scatter decision
//              through the probe (the Coordinator's FanOutPlanner makes it;
//              see plan/fanout.hpp).
//
// EXPLAIN renders the Plan as a Table instead of executing. Planning is
// best-effort: any exception while building a plan falls back to the naive
// executor (plan-or-fallback totality — fuzz_plan pins it).
//
// Thread-safe: run() is called concurrently by the serving tier's pool
// workers. The internal mutex (rank kPlanner) guards only the repeat
// history and stats, never a fold.
#pragma once

#include <cstdint>
#include <string>

#include "common/lru_cache.hpp"
#include "common/metrics.hpp"
#include "common/mutex.hpp"
#include "flowdb/ast.hpp"
#include "flowdb/plan/cost.hpp"
#include "flowdb/plan/shared.hpp"
#include "flowdb/source.hpp"
#include "flowdb/table.hpp"

namespace megads::flowdb::plan {

/// One planned statement — everything run() decided before executing.
struct Plan {
  Statement statement;
  PlanProbe probe;
  /// Canonical selection shape (fold_shape of ranges + locations).
  std::string shape;
  /// Attach to in-flight identical folds (requires a versioned source).
  bool share = false;
  /// Selection seen before by this planner (repeat history).
  bool repeated = false;
  CacheMode cache_mode = CacheMode::kPopulate;
  /// Estimated cost of the chosen path and of the pre-planner default.
  double est_cost_ns = 0.0;
  double est_naive_ns = 0.0;
};

class QueryPlanner {
 public:
  /// Forced cache-mode for the equivalence suites ("all rewrite choices").
  enum class CacheModeOverride : std::uint8_t {
    kAuto,
    kAlwaysPopulate,
    kAlwaysReadOnly
  };

  struct Options {
    bool enable_sharing = true;
    CacheModeOverride cache_mode = CacheModeOverride::kAuto;
    /// Byte budget of the selection-shape repeat history.
    std::size_t shape_history_bytes = 64 * 1024;
  };

  QueryPlanner() : QueryPlanner(Options()) {}
  explicit QueryPlanner(Options options);

  /// Plan a statement without executing it (EXPLAIN's substance; also
  /// updates the repeat history, so planning is what "sees" a shape).
  [[nodiscard]] Plan plan(const Statement& statement,
                          const SummarySource& source);

  /// Plan + execute. EXPLAIN statements render the plan table instead.
  /// Results are byte-identical to execute(statement, source).
  [[nodiscard]] Table run(const Statement& statement,
                          const SummarySource& source);
  /// Parse + plan + execute.
  [[nodiscard]] Table run(const std::string& statement,
                          const SummarySource& source);

  /// The plan rendered as a two-column property/value table.
  [[nodiscard]] static Table explain_table(const Plan& plan);

  /// Re-seed the cost model from live registry readings.
  void refresh_costs(const metrics::Snapshot& snapshot);
  [[nodiscard]] CostModel& cost_model() noexcept { return cost_; }

  struct Stats {
    std::uint64_t planned = 0;
    std::uint64_t explains = 0;
    /// Folds that attached to an identical in-flight fold.
    std::uint64_t shared_folds = 0;
    /// Folds executed with the read-only cache policy.
    std::uint64_t read_only_folds = 0;
    /// Statements that fell back to the naive executor.
    std::uint64_t fallbacks = 0;
  };
  [[nodiscard]] Stats stats() const;

  /// Publish plan.queries / plan.shared_folds / plan.read_only_folds /
  /// plan.fallbacks (cumulative; catches up on pre-attach counts). The
  /// registry must outlive the planner.
  void attach_metrics(metrics::MetricsRegistry& registry);

 private:
  [[nodiscard]] Table execute_plan(const Plan& plan,
                                   const SummarySource& source);
  /// Record a shape sighting; true when it was already in the history.
  [[nodiscard]] bool note_shape(const std::string& shape);
  void note_shared(std::uint64_t n);

  Options options_;
  CostModel cost_;  ///< guarded by convention: seeded before concurrent use
  SharedFoldRegistry registry_;

  mutable Mutex mu_{lockrank::kPlanner, "planner"};
  LruCache<std::string, std::uint64_t> shapes_ MEGADS_GUARDED_BY(mu_);
  Stats stats_ MEGADS_GUARDED_BY(mu_);
  metrics::Counter* metric_queries_ MEGADS_GUARDED_BY(mu_) = nullptr;
  metrics::Counter* metric_shared_ MEGADS_GUARDED_BY(mu_) = nullptr;
  metrics::Counter* metric_read_only_ MEGADS_GUARDED_BY(mu_) = nullptr;
  metrics::Counter* metric_fallbacks_ MEGADS_GUARDED_BY(mu_) = nullptr;
};

}  // namespace megads::flowdb::plan
