// SummarySource — what the FlowQL executor actually needs from its backend:
// a Table II Merge of the summaries matching a (time ranges, locations)
// selection. FlowDB implements it over its local index; the partitioned
// Coordinator implements it by scatter-gather over a Transport. The executor
// is written against this interface, so single-node and distributed
// execution share one code path — which is also what makes the distributed-
// equivalence suites meaningful: same executor, different merged() provider.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "flowtree/flatblock.hpp"
#include "flowtree/flowtree.hpp"

namespace megads {
class ThreadPool;
}

namespace megads::flowdb {

class SummarySource {
 public:
  virtual ~SummarySource() = default;

  /// All summaries overlapping `intervals` (all time when empty) at
  /// `locations` (all locations when empty), folded per the Table II Merge
  /// discipline: per location over time first (shared location), then across
  /// locations (shared time).
  [[nodiscard]] virtual flowtree::Flowtree merged(
      const std::vector<TimeInterval>& intervals,
      const std::vector<std::string>& locations) const = 0;

  /// The same selection as a read-only operand. The default wraps merged();
  /// sources that already hold the answer as a flat block (a partitioned
  /// coordinator whose gather produced a single partial) override it to hand
  /// the bytes out zero-copy instead of materializing a node pool. The
  /// executor uses this for every non-mutating operator.
  [[nodiscard]] virtual flowtree::MergedView merged_view(
      const std::vector<TimeInterval>& intervals,
      const std::vector<std::string>& locations) const {
    return flowtree::MergedView(merged(intervals, locations));
  }

  /// Pool the executor may use for independent sub-merges (diff operands);
  /// nullptr = run them serially on the caller's thread.
  [[nodiscard]] virtual ThreadPool* merge_pool() const noexcept {
    return nullptr;
  }
};

}  // namespace megads::flowdb
