// SummarySource — what the FlowQL executor actually needs from its backend:
// a Table II Merge of the summaries matching a (time ranges, locations)
// selection. FlowDB implements it over its local index; the partitioned
// Coordinator implements it by scatter-gather over a Transport. The executor
// is written against this interface, so single-node and distributed
// execution share one code path — which is also what makes the distributed-
// equivalence suites meaningful: same executor, different merged() provider.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "flowtree/flatblock.hpp"
#include "flowtree/flowtree.hpp"

namespace megads {
class ThreadPool;
}

namespace megads::flowdb {

/// View-cache policy for one fold, chosen per query by the planner
/// (docs/PLANNING.md). Both modes produce byte-identical results — the
/// decomposition is the same; only whether the fold's products are inserted
/// into the source's caches differs.
enum class CacheMode : std::uint8_t {
  /// Read warm cache entries and insert what the fold produces (the
  /// pre-planner behaviour of every merged()/merged_view() call).
  kPopulate,
  /// Read warm cache entries but insert nothing: predicted one-off
  /// selections should not churn the LRU that dashboards depend on.
  kReadOnly,
};

/// What a source can tell the planner about a selection without executing
/// it. All fields are advisory — a probe that lags concurrent ingest only
/// shifts cost estimates, never results.
struct PlanProbe {
  /// False when the source has no planner support; every other field is
  /// then meaningless and the planner falls back to naive execution.
  bool known = false;
  /// True when `version` identifies the source's contents: two probes of
  /// the same source with equal versions saw identical summary sets, which
  /// is what makes cross-query fold sharing sound.
  bool versioned = false;
  std::uint64_t version = 0;
  /// Summaries the selection folds and the location groups they form.
  std::size_t summary_count = 0;
  std::size_t location_groups = 0;
  /// Exact selection already materialized in a view cache (O(1) handout).
  bool full_view_cached = false;
  /// Partitioned sources only (0 shards_total = single node): the per-query
  /// scatter decision and how it compares to the partitioner-global one.
  std::size_t shards_total = 0;
  std::size_t shards_selected = 0;
  std::size_t shards_pruned = 0;
  std::size_t local_shards = 0;
  /// Unloaded transport cost of the scatter (sim-time units; 0 = free).
  double scatter_transfer_cost = 0.0;
};

class SummarySource {
 public:
  virtual ~SummarySource() = default;

  /// All summaries overlapping `intervals` (all time when empty) at
  /// `locations` (all locations when empty), folded per the Table II Merge
  /// discipline: per location over time first (shared location), then across
  /// locations (shared time).
  [[nodiscard]] virtual flowtree::Flowtree merged(
      const std::vector<TimeInterval>& intervals,
      const std::vector<std::string>& locations) const = 0;

  /// The same selection as a read-only operand. The default wraps merged();
  /// sources that already hold the answer as a flat block (a partitioned
  /// coordinator whose gather produced a single partial) override it to hand
  /// the bytes out zero-copy instead of materializing a node pool. The
  /// executor uses this for every non-mutating operator.
  [[nodiscard]] virtual flowtree::MergedView merged_view(
      const std::vector<TimeInterval>& intervals,
      const std::vector<std::string>& locations) const {
    return flowtree::MergedView(merged(intervals, locations));
  }

  /// merged_view() with an explicit cache policy. The default ignores the
  /// hint (sources without caches have nothing to bypass); FlowDB honours
  /// kReadOnly by folding without inserting into its view/block cache.
  [[nodiscard]] virtual flowtree::MergedView merged_view_hint(
      const std::vector<TimeInterval>& intervals,
      const std::vector<std::string>& locations, CacheMode mode) const {
    (void)mode;
    return merged_view(intervals, locations);
  }

  /// Planner probe for a selection: content version, selection size, cache
  /// state, and (partitioned sources) the per-query scatter decision. The
  /// default reports "no planner support".
  [[nodiscard]] virtual PlanProbe plan_probe(
      const std::vector<TimeInterval>& intervals,
      const std::vector<std::string>& locations) const {
    (void)intervals;
    (void)locations;
    return {};
  }

  /// Pool the executor may use for independent sub-merges (diff operands);
  /// nullptr = run them serially on the caller's thread.
  [[nodiscard]] virtual ThreadPool* merge_pool() const noexcept {
    return nullptr;
  }
};

}  // namespace megads::flowdb
