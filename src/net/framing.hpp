// Length-prefixed outer framing for every byte stream the engine speaks over
// real sockets: [u32 magic "MDF1"][u32 payload length][payload bytes], all
// little-endian. Both the SocketTransport node-to-node frames and the serving
// tier's client protocol ride on this one framing, so torn-read reassembly is
// implemented — and fuzzed — exactly once.
//
// FrameReassembler is the read side: it consumes arbitrary byte chunks in
// whatever sizes the kernel hands back (a frame may arrive one byte at a
// time, or many frames in one read) and yields complete payloads. It follows
// the PR 6 envelope codec discipline: strict validation as early as possible
// (bad magic or an oversized length throws ParseError before any payload is
// buffered), bounded memory (nothing past max_payload_bytes is ever
// accumulated), and no half-parsed state — after a throw the stream is dead
// and the caller must close the connection.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

namespace megads::net {

/// "MDF1" — megads frame, version 1.
inline constexpr std::uint32_t kFrameMagic = 0x3146'444D;
/// Bytes of overhead per frame (magic + length prefix).
inline constexpr std::size_t kFrameHeaderBytes = 8;

/// Wrap `payload` in the outer framing (header + copy of the payload).
[[nodiscard]] std::vector<std::uint8_t> encode_frame(
    const std::vector<std::uint8_t>& payload);

/// Append the frame header for a payload of `payload_len` bytes to `out`.
/// Callers streaming a payload they already hold avoid the encode_frame copy.
void append_frame_header(std::vector<std::uint8_t>& out,
                         std::size_t payload_len);

/// Incremental frame decoder over a torn byte stream. feed() bytes as they
/// arrive; next() hands out each completed payload exactly once.
class FrameReassembler {
 public:
  /// `max_payload_bytes` bounds per-frame memory; a declared length above it
  /// is a protocol violation (ParseError), not an allocation.
  explicit FrameReassembler(std::size_t max_payload_bytes = 64u << 20)
      : max_payload_bytes_(max_payload_bytes) {}

  /// Consume `len` raw stream bytes. Throws ParseError on bad magic or an
  /// oversized declared length; the reassembler is unusable afterwards.
  void feed(const std::uint8_t* data, std::size_t len);
  void feed(const std::vector<std::uint8_t>& bytes) {
    feed(bytes.data(), bytes.size());
  }

  /// The next complete payload, or nullopt when more bytes are needed.
  /// Drain with a loop: one feed() may complete many frames.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> next();

  /// Bytes buffered toward the frame under assembly (diagnostics).
  [[nodiscard]] std::size_t pending_bytes() const noexcept {
    return buffer_.size() - consumed_;
  }

 private:
  /// Validate the header at the front of the buffer once 8 bytes are in.
  void check_header();

  std::size_t max_payload_bytes_;
  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;      ///< bytes of buffer_ already handed out
  bool header_checked_ = false;   ///< current frame's header validated
  bool poisoned_ = false;         ///< a ParseError was thrown; stream is dead
};

}  // namespace megads::net
