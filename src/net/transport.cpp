#include "net/transport.hpp"

#include <string>
#include <utility>

#include "common/error.hpp"

namespace megads::net {

// --- SimTransport -----------------------------------------------------------

SimTime SimTransport::send(NodeId from, NodeId to, std::uint64_t bytes,
                           DeliveryCallback on_delivered) {
  return network_->send(from, to, bytes, std::move(on_delivered));
}

SimTime SimTransport::send_message(NodeId from, NodeId to,
                                   std::vector<std::uint8_t> payload) {
  if (handlers_.find(to) == handlers_.end()) {
    throw NotFoundError("SimTransport::send_message: no handler bound at node " +
                        std::to_string(to.value()));
  }
  const std::uint64_t bytes = payload.size();
  return network_->send(
      from, to, bytes,
      [this, from, to, data = std::move(payload)](SimTime delivered) {
        // Look the handler up again at delivery time: rebinding between send
        // and delivery hands the message to the new owner.
        const auto it = handlers_.find(to);
        if (it == handlers_.end()) {
          throw NotFoundError(
              "SimTransport: message arrived at node " +
              std::to_string(to.value()) + " after its handler was unbound");
        }
        it->second(from, data, delivered);
      });
}

void SimTransport::bind(NodeId node, MessageHandler handler) {
  expects(static_cast<bool>(handler), "SimTransport::bind: empty handler");
  handlers_[node] = std::move(handler);
}

void SimTransport::unbind(NodeId node) { handlers_.erase(node); }

SimDuration SimTransport::transfer_time_unloaded(NodeId from, NodeId to,
                                                 std::uint64_t bytes) const {
  return network_->transfer_time_unloaded(from, to, bytes);
}

SimTime SimTransport::now() const { return network_->simulator().now(); }

void SimTransport::run_until_idle() { network_->simulator().run(); }

// --- LoopbackTransport ------------------------------------------------------

SimTime LoopbackTransport::send(NodeId from, NodeId to, std::uint64_t bytes,
                                DeliveryCallback on_delivered) {
  (void)from;
  (void)to;
  {
    const MutexLock lock(mu_);
    stats_.messages += 1;
    stats_.bytes += bytes;
    stats_.payload_bytes += bytes;
    if (metric_messages_ != nullptr) {
      metric_messages_->add();
      metric_payload_bytes_->add(bytes);
    }
  }
  if (on_delivered) on_delivered(0);
  return 0;
}

SimTime LoopbackTransport::send_message(NodeId from, NodeId to,
                                        std::vector<std::uint8_t> payload) {
  MessageHandler handler;
  {
    const MutexLock lock(mu_);
    const auto it = handlers_.find(to);
    if (it == handlers_.end()) {
      throw NotFoundError(
          "LoopbackTransport::send_message: no handler bound at node " +
          std::to_string(to.value()));
    }
    handler = it->second;  // copy: dispatch happens outside the lock
    stats_.messages += 1;
    stats_.bytes += payload.size();
    stats_.payload_bytes += payload.size();
    if (metric_messages_ != nullptr) {
      metric_messages_->add();
      metric_payload_bytes_->add(payload.size());
    }
  }
  handler(from, payload, 0);
  return 0;
}

void LoopbackTransport::bind(NodeId node, MessageHandler handler) {
  expects(static_cast<bool>(handler), "LoopbackTransport::bind: empty handler");
  const MutexLock lock(mu_);
  handlers_[node] = std::move(handler);
}

void LoopbackTransport::unbind(NodeId node) {
  const MutexLock lock(mu_);
  handlers_.erase(node);
}

SimDuration LoopbackTransport::transfer_time_unloaded(NodeId, NodeId,
                                                      std::uint64_t) const {
  return 0;
}

TransferStats LoopbackTransport::stats() const {
  const MutexLock lock(mu_);
  return stats_;
}

void LoopbackTransport::attach_metrics(metrics::MetricsRegistry& registry) {
  const MutexLock lock(mu_);
  metric_messages_ = &registry.counter("net.messages");
  metric_payload_bytes_ = &registry.counter("net.payload_bytes");
}

}  // namespace megads::net
