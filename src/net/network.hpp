// Message transfer over a Topology on virtual time.
//
// Transfers are store-and-forward: at each hop the message waits for the
// link to become free (FIFO serialization), occupies it for size/bandwidth,
// then propagates for the link latency. This captures the two costs the
// paper's transfer optimization (Section VII) trades off — per-query shipping
// latency and cumulative network volume — without simulating packets.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/metrics.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"

namespace megads::net {

/// Aggregate transfer accounting, also available per link.
struct TransferStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;        ///< payload bytes times hops traversed
  std::uint64_t payload_bytes = 0;///< payload bytes, counted once per message
};

class Network {
 public:
  /// `sim` and `topology` must outlive the Network.
  Network(sim::Simulator& sim, const Topology& topology) noexcept
      : sim_(&sim), topology_(&topology) {}

  using DeliveryCallback = std::function<void(SimTime delivered_at)>;

  /// Send `bytes` from `from` to `to`; invokes `on_delivered` at the virtual
  /// time the last byte arrives. Throws NotFoundError when unreachable.
  /// Returns the scheduled delivery time.
  SimTime send(NodeId from, NodeId to, std::uint64_t bytes,
               DeliveryCallback on_delivered = nullptr);

  /// Lower bound on delivery time for a hypothetical transfer (ignores
  /// queueing). Useful for cost models.
  [[nodiscard]] SimDuration transfer_time_unloaded(NodeId from, NodeId to,
                                                   std::uint64_t bytes) const;

  /// The simulator driving deliveries (for transports layered on top).
  [[nodiscard]] sim::Simulator& simulator() const noexcept { return *sim_; }

  [[nodiscard]] const TransferStats& stats() const noexcept { return stats_; }
  [[nodiscard]] TransferStats link_stats(LinkId id) const;
  void reset_stats() noexcept;

  /// Mirror transfer accounting into `registry`: net.messages / net.bytes /
  /// net.payload_bytes counters, a net.transfer_us latency histogram, and
  /// per-link net.link.<id>.messages / net.link.<id>.bytes counters (created
  /// lazily the first time a link carries traffic). The registry must outlive
  /// the Network.
  void attach_metrics(metrics::MetricsRegistry& registry);

 private:
  struct LinkInstruments {
    metrics::Counter* messages = nullptr;
    metrics::Counter* bytes = nullptr;
  };
  LinkInstruments& link_instruments(LinkId id);

  sim::Simulator* sim_;
  const Topology* topology_;
  TransferStats stats_;
  std::unordered_map<LinkId, TransferStats> per_link_;
  std::unordered_map<LinkId, SimTime> link_free_at_;

  metrics::MetricsRegistry* metrics_ = nullptr;
  metrics::Counter* metric_messages_ = nullptr;
  metrics::Counter* metric_bytes_ = nullptr;
  metrics::Counter* metric_payload_bytes_ = nullptr;
  metrics::Histogram* metric_transfer_us_ = nullptr;
  std::unordered_map<LinkId, LinkInstruments> link_instruments_;
};

}  // namespace megads::net
