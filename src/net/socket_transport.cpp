#include "net/socket_transport.hpp"

#include <poll.h>
#include <sys/socket.h>

#include <algorithm>
#include <set>
#include <utility>

#include "common/error.hpp"

namespace megads::net {

namespace {

// Inner payload kinds carried by the outer framing (net/framing.hpp).
constexpr std::uint8_t kKindMessage = 1;     // from,to + user payload
constexpr std::uint8_t kKindVolume = 2;      // from,to + declared byte count
constexpr std::uint8_t kKindBarrier = 3;     // token (run_until_idle round)
constexpr std::uint8_t kKindBarrierAck = 4;  // token

void put_u32le(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void put_u64le(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

/// Bounds-checked little-endian cursor (the envelope Reader discipline).
class Cursor {
 public:
  explicit Cursor(const std::vector<std::uint8_t>& bytes) : bytes_(bytes) {}
  [[nodiscard]] std::size_t remaining() const { return bytes_.size() - pos_; }
  std::uint8_t u8() {
    need(1);
    return bytes_[pos_++];
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t{bytes_[pos_++]} << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{bytes_[pos_++]} << (8 * i);
    return v;
  }
  [[nodiscard]] std::vector<std::uint8_t> rest() {
    std::vector<std::uint8_t> out(
        bytes_.begin() + static_cast<std::ptrdiff_t>(pos_), bytes_.end());
    pos_ = bytes_.size();
    return out;
  }

 private:
  void need(std::size_t n) const {
    if (n > remaining()) throw ParseError("socket transport: truncated frame");
  }
  const std::vector<std::uint8_t>& bytes_;
  std::size_t pos_ = 0;
};

}  // namespace

SocketTransport::SocketTransport(Options options)
    : options_(std::move(options)), start_(std::chrono::steady_clock::now()) {
  auto [fd, bound_port] = tcp_listen(options_.host, options_.port);
  listen_fd_ = std::move(fd);
  port_ = bound_port;
  set_nonblocking(listen_fd_.get());
  loop_thread_ = std::thread([this] { loop(); });
}

SocketTransport::~SocketTransport() {
  {
    const MutexLock lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  wake_.wake();
  if (loop_thread_.joinable()) loop_thread_.join();
}

void SocketTransport::add_peer(NodeId node, std::string host,
                               std::uint16_t peer_port) {
  const MutexLock lock(mu_);
  peers_[node] = Peer{std::move(host), peer_port};
}

void SocketTransport::bind(NodeId node, MessageHandler handler) {
  const MutexLock lock(mu_);
  handlers_[node] = std::move(handler);
}

void SocketTransport::unbind(NodeId node) {
  const MutexLock lock(mu_);
  handlers_.erase(node);
}

SimDuration SocketTransport::transfer_time_unloaded(NodeId /*from*/,
                                                    NodeId /*to*/,
                                                    std::uint64_t /*bytes*/) const {
  return 0;  // a real network's lower bound: we cannot promise more
}

SimTime SocketTransport::now() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

TransferStats SocketTransport::stats() const {
  const MutexLock lock(mu_);
  return stats_;
}

std::uint64_t SocketTransport::dropped_frames() const {
  const MutexLock lock(mu_);
  return dropped_frames_;
}

void SocketTransport::attach_metrics(metrics::MetricsRegistry& registry) {
  const MutexLock lock(mu_);
  metric_messages_ = &registry.counter("net.messages");
  metric_payload_bytes_ = &registry.counter("net.payload_bytes");
  metric_dropped_ = &registry.counter("net.dropped_transport");
  metric_messages_->add(stats_.messages);
  metric_payload_bytes_->add(stats_.payload_bytes);
  metric_dropped_->add(dropped_frames_);
}

void SocketTransport::note_dropped_locked() {
  ++dropped_frames_;
  if (metric_dropped_ != nullptr) metric_dropped_->add(1);
}

SimTime SocketTransport::send(NodeId from, NodeId to, std::uint64_t bytes,
                              DeliveryCallback on_delivered) {
  std::vector<std::uint8_t> payload;
  payload.reserve(1 + 4 + 4 + 8);
  payload.push_back(kKindVolume);
  put_u32le(payload, from.value());
  put_u32le(payload, to.value());
  put_u64le(payload, bytes);
  enqueue_to(to, encode_frame(payload));
  {
    const MutexLock lock(mu_);
    ++stats_.messages;
    stats_.bytes += bytes;
    stats_.payload_bytes += bytes;
    ++activity_;
    if (metric_messages_ != nullptr) metric_messages_->add(1);
    if (metric_payload_bytes_ != nullptr) metric_payload_bytes_->add(bytes);
  }
  // Accounting-only transfer: a real network cannot report remote delivery
  // without an ack protocol, so the callback fires at enqueue time.
  const SimTime at = now();
  if (on_delivered) on_delivered(at);
  return at;
}

SimTime SocketTransport::send_message(NodeId from, NodeId to,
                                      std::vector<std::uint8_t> payload) {
  std::vector<std::uint8_t> body;
  body.reserve(1 + 4 + 4 + payload.size());
  body.push_back(kKindMessage);
  put_u32le(body, from.value());
  put_u32le(body, to.value());
  body.insert(body.end(), payload.begin(), payload.end());
  enqueue_to(to, encode_frame(body));
  {
    const MutexLock lock(mu_);
    ++stats_.messages;
    stats_.bytes += payload.size();
    stats_.payload_bytes += payload.size();
    ++activity_;
    if (metric_messages_ != nullptr) metric_messages_->add(1);
    if (metric_payload_bytes_ != nullptr) {
      metric_payload_bytes_->add(payload.size());
    }
  }
  return now();
}

void SocketTransport::enqueue_to(NodeId to, const std::vector<std::uint8_t>& frame) {
  {
    const MutexLock lock(mu_);
    // Prefer the connection the node last spoke to us on — replies must
    // travel the request's socket for barrier ordering to hold.
    const auto conn_it = conn_of_node_.find(to);
    if (conn_it != conn_of_node_.end()) {
      const auto live = conns_.find(conn_it->second);
      if (live != conns_.end()) {
        live->second->outbound.insert(live->second->outbound.end(),
                                      frame.begin(), frame.end());
        wake_.wake();
        return;
      }
      conn_of_node_.erase(conn_it);
    }
    // A locally bound node with no connection means the caller is sending to
    // itself (the coordinator hosts a replica, say): loop it straight to the
    // handler below, outside the lock.
  }

  MessageHandler self_handler;
  {
    const MutexLock lock(mu_);
    if (peers_.find(to) == peers_.end()) {
      const auto handler_it = handlers_.find(to);
      if (handler_it == handlers_.end()) {
        throw NotFoundError("socket transport: unknown destination node " +
                            std::to_string(to.value()));
      }
      self_handler = handler_it->second;
    }
  }
  if (self_handler) {
    // Local destination: decode our own frame and dispatch directly.
    try {
      Cursor cursor(frame);
      // Skip the outer frame header (magic + length).
      for (int i = 0; i < 2; ++i) (void)cursor.u32();
      const std::uint8_t kind = cursor.u8();
      const NodeId from{cursor.u32()};
      (void)cursor.u32();  // to
      if (kind == kKindMessage) {
        const std::vector<std::uint8_t> payload = cursor.rest();
        self_handler(from, payload, now());
      }
    } catch (const ParseError&) {
      const MutexLock lock(mu_);
      note_dropped_locked();
    }
    return;
  }

  // Dial on demand (blocking connect — loopback/LAN latency, held outside
  // the dispatch path).
  Peer peer;
  {
    const MutexLock lock(mu_);
    peer = peers_.at(to);
  }
  ScopedFd fd = tcp_connect(peer.host, peer.port);
  set_nodelay(fd.get());
  set_nonblocking(fd.get());
  {
    const MutexLock lock(mu_);
    // Another sender may have raced the dial; prefer the registered one.
    const auto conn_it = conn_of_node_.find(to);
    if (conn_it != conn_of_node_.end() && conns_.count(conn_it->second) > 0) {
      const auto& live = conns_.at(conn_it->second);
      live->outbound.insert(live->outbound.end(), frame.begin(), frame.end());
    } else {
      auto conn = std::make_shared<Conn>();
      conn->peer = to;
      conn->ready = true;
      conn->outbound.assign(frame.begin(), frame.end());
      const int raw = fd.get();
      conn->fd = std::move(fd);
      conn->reassembler = FrameReassembler(options_.max_frame_bytes);
      conns_[raw] = std::move(conn);
      conn_of_node_[to] = raw;
    }
  }
  wake_.wake();
}

void SocketTransport::run_until_idle() {
  // One barrier round already settles a direct request-response exchange
  // (replies are enqueued on the request's socket before the ack — see the
  // file comment); further rounds settle multi-hop cascades. The cap keeps
  // unrelated concurrent traffic from starving the idle detector: after it,
  // every message sent *before* this call is guaranteed delivered, which is
  // the property the scatter-gather coordinator needs.
  constexpr int kMaxRounds = 8;
  for (int round = 0; round < kMaxRounds; ++round) {
    std::uint64_t before = 0;
    std::uint64_t token = 0;
    bool had_conns = false;
    {
      const MutexLock lock(mu_);
      before = activity_;
      token = next_barrier_token_++;
      Barrier barrier;
      std::vector<std::uint8_t> payload;
      payload.push_back(kKindBarrier);
      put_u64le(payload, token);
      const std::vector<std::uint8_t> frame = encode_frame(payload);
      for (auto& [fd, conn] : conns_) {
        conn->outbound.insert(conn->outbound.end(), frame.begin(), frame.end());
        ++barrier.remaining;
        barrier.fds.insert(fd);
      }
      had_conns = barrier.remaining > 0;
      if (had_conns) barriers_[token] = std::move(barrier);
    }
    if (!had_conns) return;  // no connections: nothing can be in flight
    wake_.wake();
    bool idle = false;
    {
      UniqueLock lock(mu_);
      cv_.wait(lock, [&] {
        mu_.assert_held();  // wait predicates run under the lock
        return stopping_ || barriers_[token].remaining == 0;
      });
      barriers_.erase(token);
      idle = (activity_ == before) || stopping_;
    }
    if (idle) return;
  }
}

void SocketTransport::loop() {
  std::vector<pollfd> fds;
  for (;;) {
    fds.clear();
    fds.push_back({wake_.read_fd(), POLLIN, 0});
    fds.push_back({listen_fd_.get(), POLLIN, 0});
    {
      const MutexLock lock(mu_);
      if (stopping_) break;
      for (const auto& [fd, conn] : conns_) {
        short events = POLLIN;
        if (conn->out_pos < conn->outbound.size()) events |= POLLOUT;
        fds.push_back({fd, events, 0});
      }
    }
    const int rc = ::poll(fds.data(), fds.size(), 100);
    if (rc < 0) continue;  // EINTR
    wake_.drain();

    if ((fds[1].revents & POLLIN) != 0) {
      for (;;) {
        const int client = ::accept(listen_fd_.get(), nullptr, nullptr);
        if (client < 0) break;
        set_nonblocking(client);
        set_nodelay(client);
        auto conn = std::make_shared<Conn>();
        conn->fd = ScopedFd(client);
        conn->reassembler = FrameReassembler(options_.max_frame_bytes);
        const MutexLock lock(mu_);
        conns_[client] = std::move(conn);
      }
    }

    for (std::size_t i = 2; i < fds.size(); ++i) {
      const pollfd& entry = fds[i];
      if (entry.revents == 0) continue;
      bool alive = true;
      if ((entry.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0) {
        alive = false;
      }
      if (alive && (entry.revents & POLLIN) != 0) {
        alive = service_readable(entry.fd);
      }
      if (alive && (entry.revents & POLLOUT) != 0) {
        alive = flush_writable(entry.fd);
      }
      if (!alive) drop_conn(entry.fd);
    }

    // Senders may have queued bytes on conns that were not POLLOUT-armed in
    // this round's snapshot; opportunistically flush everything writable.
    std::vector<int> pending;
    {
      const MutexLock lock(mu_);
      for (const auto& [fd, conn] : conns_) {
        if (conn->out_pos < conn->outbound.size()) pending.push_back(fd);
      }
    }
    for (const int fd : pending) {
      if (!flush_writable(fd)) drop_conn(fd);
    }
  }
}

bool SocketTransport::service_readable(int fd) {
  std::shared_ptr<Conn> conn;
  {
    const MutexLock lock(mu_);
    const auto it = conns_.find(fd);
    if (it == conns_.end()) return true;
    conn = it->second;
  }
  std::uint8_t buf[64 * 1024];
  for (;;) {
    const IoResult io = read_some(fd, buf, sizeof(buf));
    if (io.closed) return false;
    if (io.would_block) return true;
    try {
      conn->reassembler.feed(buf, io.bytes);
      for (;;) {
        auto payload = conn->reassembler.next();
        if (!payload.has_value()) break;
        handle_frame(fd, *payload);
      }
    } catch (const ParseError&) {
      const MutexLock lock(mu_);
      note_dropped_locked();
      return false;  // protocol violation: the stream is unrecoverable
    }
    if (io.bytes < sizeof(buf)) return true;  // drained for now
  }
}

void SocketTransport::handle_frame(int fd,
                                   const std::vector<std::uint8_t>& payload) {
  MessageHandler handler;
  NodeId from;
  std::vector<std::uint8_t> message;
  try {
    Cursor cursor(payload);
    const std::uint8_t kind = cursor.u8();
    switch (kind) {
      case kKindMessage: {
        from = NodeId{cursor.u32()};
        const NodeId to{cursor.u32()};
        message = cursor.rest();
        const MutexLock lock(mu_);
        conn_of_node_[from] = fd;  // replies ride the request's socket
        ++activity_;
        const auto it = handlers_.find(to);
        if (it == handlers_.end()) {
          note_dropped_locked();
          return;
        }
        handler = it->second;
        break;
      }
      case kKindVolume: {
        from = NodeId{cursor.u32()};
        (void)cursor.u32();  // to
        const std::uint64_t declared = cursor.u64();
        const MutexLock lock(mu_);
        conn_of_node_[from] = fd;
        ++activity_;
        (void)declared;  // sender already accounted the volume
        return;
      }
      case kKindBarrier: {
        const std::uint64_t token = cursor.u64();
        std::vector<std::uint8_t> ack;
        ack.push_back(kKindBarrierAck);
        put_u64le(ack, token);
        const std::vector<std::uint8_t> frame = encode_frame(ack);
        const MutexLock lock(mu_);
        const auto it = conns_.find(fd);
        if (it != conns_.end()) {
          it->second->outbound.insert(it->second->outbound.end(), frame.begin(),
                                      frame.end());
        }
        return;  // flushed by the loop iteration that called us
      }
      case kKindBarrierAck: {
        const std::uint64_t token = cursor.u64();
        const MutexLock lock(mu_);
        const auto it = barriers_.find(token);
        if (it != barriers_.end()) {
          it->second.fds.erase(fd);
          it->second.remaining = it->second.fds.size();
        }
        cv_.notify_all();
        return;
      }
      default:
        throw ParseError("socket transport: unknown frame kind");
    }
  } catch (const ParseError&) {
    const MutexLock lock(mu_);
    note_dropped_locked();
    return;
  }
  // Dispatch outside mu_ — handlers send (partition servers reply from
  // inside on_message), and they take their own, lower-ranked locks.
  if (handler) handler(from, message, now());
}

bool SocketTransport::flush_writable(int fd) {
  const MutexLock lock(mu_);
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return true;
  Conn& conn = *it->second;
  while (conn.out_pos < conn.outbound.size()) {
    std::size_t len = conn.outbound.size() - conn.out_pos;
    if (options_.max_write_chunk > 0) {
      len = std::min(len, options_.max_write_chunk);
    }
    const IoResult io =
        write_some(fd, conn.outbound.data() + conn.out_pos, len);
    if (io.closed) return false;
    if (io.would_block) break;
    conn.out_pos += io.bytes;
  }
  if (conn.out_pos == conn.outbound.size()) {
    conn.outbound.clear();
    conn.out_pos = 0;
  } else if (conn.out_pos >= 4096) {
    conn.outbound.erase(
        conn.outbound.begin(),
        conn.outbound.begin() + static_cast<std::ptrdiff_t>(conn.out_pos));
    conn.out_pos = 0;
  }
  return true;
}

void SocketTransport::drop_conn(int fd) {
  const MutexLock lock(mu_);
  conns_.erase(fd);
  for (auto it = conn_of_node_.begin(); it != conn_of_node_.end();) {
    if (it->second == fd) {
      it = conn_of_node_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto& [token, barrier] : barriers_) {
    barrier.fds.erase(fd);
    barrier.remaining = barrier.fds.size();
  }
  cv_.notify_all();
}

}  // namespace megads::net
