#include "net/network.hpp"

#include <cmath>
#include <string>
#include <utility>

namespace megads::net {

namespace {

SimDuration serialization_time(std::uint64_t bytes, double bandwidth_bps) {
  const double seconds = static_cast<double>(bytes) / bandwidth_bps;
  return static_cast<SimDuration>(std::ceil(seconds * static_cast<double>(kSecond)));
}

}  // namespace

SimTime Network::send(NodeId from, NodeId to, std::uint64_t bytes,
                      DeliveryCallback on_delivered) {
  const auto path = topology_->shortest_path(from, to);
  if (!path) {
    throw NotFoundError("Network::send: no path between nodes " +
                        std::to_string(from.value()) + " and " +
                        std::to_string(to.value()));
  }

  SimTime head = sim_->now();
  for (const LinkId lid : *path) {
    const Link& link = topology_->link(lid);
    SimTime& free_at = link_free_at_[lid];
    const SimTime start = std::max(head, free_at);
    const SimDuration serialize = serialization_time(bytes, link.bandwidth_bps);
    free_at = start + serialize;
    head = start + serialize + link.latency;

    auto& ls = per_link_[lid];
    ls.messages += 1;
    ls.bytes += bytes;
    ls.payload_bytes += bytes;
    stats_.bytes += bytes;
    if (metrics_ != nullptr) {
      LinkInstruments& li = link_instruments(lid);
      li.messages->add();
      li.bytes->add(bytes);
      metric_bytes_->add(bytes);
    }
  }

  stats_.messages += 1;
  stats_.payload_bytes += bytes;
  if (metrics_ != nullptr) {
    metric_messages_->add();
    metric_payload_bytes_->add(bytes);
    metric_transfer_us_->observe(static_cast<double>(head - sim_->now()));
  }

  const SimTime delivered_at = head;
  if (on_delivered) {
    sim_->schedule_at(delivered_at, [cb = std::move(on_delivered)](SimTime t) { cb(t); });
  }
  return delivered_at;
}

SimDuration Network::transfer_time_unloaded(NodeId from, NodeId to,
                                            std::uint64_t bytes) const {
  const auto path = topology_->shortest_path(from, to);
  if (!path) return kTimeNever;
  SimDuration total = 0;
  for (const LinkId lid : *path) {
    const Link& link = topology_->link(lid);
    total += link.latency + serialization_time(bytes, link.bandwidth_bps);
  }
  return total;
}

TransferStats Network::link_stats(LinkId id) const {
  const auto it = per_link_.find(id);
  return it == per_link_.end() ? TransferStats{} : it->second;
}

void Network::reset_stats() noexcept {
  stats_ = {};
  per_link_.clear();
}

void Network::attach_metrics(metrics::MetricsRegistry& registry) {
  metrics_ = &registry;
  metric_messages_ = &registry.counter("net.messages");
  metric_bytes_ = &registry.counter("net.bytes");
  metric_payload_bytes_ = &registry.counter("net.payload_bytes");
  metric_transfer_us_ = &registry.histogram("net.transfer_us");
  link_instruments_.clear();
}

Network::LinkInstruments& Network::link_instruments(LinkId id) {
  const auto it = link_instruments_.find(id);
  if (it != link_instruments_.end()) return it->second;
  const std::string prefix = "net.link." + std::to_string(id) + ".";
  LinkInstruments li;
  li.messages = &metrics_->counter(prefix + "messages");
  li.bytes = &metrics_->counter(prefix + "bytes");
  return link_instruments_.emplace(id, li).first->second;
}

}  // namespace megads::net
