// Network topology: named nodes connected by undirected links with latency
// and bandwidth. Routing is shortest-path by propagation latency (Dijkstra).
//
// This is the substrate for the paper's WAN between data-store sites
// (Fig. 1): machine/line/factory levels in the smart factory, router/region/
// cloud levels in network monitoring.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace megads::net {

/// Index of a link within a Topology.
using LinkId = std::uint32_t;

struct Link {
  NodeId a;
  NodeId b;
  SimDuration latency = 0;        ///< one-way propagation delay
  double bandwidth_bps = 0.0;     ///< bytes per second of serialization capacity
  bool up = true;                 ///< failed links carry no traffic

  [[nodiscard]] NodeId other(NodeId n) const noexcept { return n == a ? b : a; }
};

struct NodeInfo {
  std::string name;
  int level = 0;  ///< hierarchy level (0 = leaf / edge, higher = closer to cloud)
};

class Topology {
 public:
  NodeId add_node(std::string name, int level = 0);

  /// Connect two existing nodes. bandwidth_bps must be positive.
  LinkId add_link(NodeId a, NodeId b, SimDuration latency, double bandwidth_bps);

  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  [[nodiscard]] std::size_t link_count() const noexcept { return links_.size(); }
  [[nodiscard]] const NodeInfo& node(NodeId id) const;
  [[nodiscard]] const Link& link(LinkId id) const;
  [[nodiscard]] std::optional<NodeId> find_node(const std::string& name) const;

  /// Links incident to a node.
  [[nodiscard]] const std::vector<LinkId>& links_of(NodeId id) const;

  /// Fail / repair a link (the paper's challenge 4: networks break and get
  /// repaired). Down links are invisible to routing.
  void set_link_state(LinkId id, bool up);
  [[nodiscard]] bool link_up(LinkId id) const;

  /// Shortest path (by cumulative latency) from `from` to `to`, returned as a
  /// sequence of link ids. Empty optional when unreachable; empty vector when
  /// from == to.
  [[nodiscard]] std::optional<std::vector<LinkId>> shortest_path(NodeId from,
                                                                 NodeId to) const;

  /// Sum of link latencies along the path between two nodes (kTimeNever if
  /// unreachable).
  [[nodiscard]] SimDuration path_latency(NodeId from, NodeId to) const;

 private:
  void check_node(NodeId id) const;

  std::vector<NodeInfo> nodes_;
  std::vector<Link> links_;
  std::vector<std::vector<LinkId>> adjacency_;
};

}  // namespace megads::net
