// Transport — the inter-node communication boundary every layer above the
// network speaks (Section III: stores exchange summaries; Section VII:
// transfers are the cost being optimized).
//
// Two kinds of traffic share the interface:
//   * send()          — accounting-only transfers: the sender knows the byte
//                       volume and wants the delay/volume charged (summary
//                       shipping, replica copies). The payload itself stays
//                       in-process.
//   * send_message()  — payload-carrying messages delivered to the handler
//                       bound at the destination node (the scatter-gather
//                       request/response envelopes of the partitioned FlowDB).
//
// Implementations:
//   * SimTransport      — wraps the store-and-forward Network (virtual time,
//                         per-link FIFO, TransferStats). Deliveries are
//                         scheduled on the simulator; run_until_idle() pumps
//                         it. Single-threaded, like the simulator itself.
//   * LoopbackTransport — in-process direct dispatch: zero latency, handlers
//                         run synchronously on the caller's thread. Thread-
//                         safe, so concurrent coordinators/queriers can share
//                         one instance.
//
// Code written against Transport runs unchanged over both — and over a real
// socket transport later — which is the point: one code path from the unit
// test to the WAN simulation.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/metrics.hpp"
#include "common/mutex.hpp"
#include "net/network.hpp"

namespace megads::net {

class Transport {
 public:
  using DeliveryCallback = std::function<void(SimTime delivered_at)>;
  /// Invoked at the destination when a send_message() payload arrives.
  using MessageHandler = std::function<void(
      NodeId from, const std::vector<std::uint8_t>& payload, SimTime now)>;

  virtual ~Transport() = default;

  /// Transfer `bytes` from `from` to `to`; `on_delivered` fires at the
  /// (virtual) time the last byte arrives. Returns the delivery time.
  /// Throws NotFoundError when the nodes are not connected.
  virtual SimTime send(NodeId from, NodeId to, std::uint64_t bytes,
                       DeliveryCallback on_delivered = nullptr) = 0;

  /// Deliver `payload` to the handler bound at `to`. The destination must be
  /// bound at send time (NotFoundError otherwise); the handler in effect at
  /// delivery time receives the bytes. Returns the delivery time.
  virtual SimTime send_message(NodeId from, NodeId to,
                               std::vector<std::uint8_t> payload) = 0;

  /// Install (or replace) the message handler for a node.
  virtual void bind(NodeId node, MessageHandler handler) = 0;
  virtual void unbind(NodeId node) = 0;

  /// Lower bound on delivery time for a hypothetical transfer (cost models).
  [[nodiscard]] virtual SimDuration transfer_time_unloaded(
      NodeId from, NodeId to, std::uint64_t bytes) const = 0;

  /// The transport's current (virtual) time.
  [[nodiscard]] virtual SimTime now() const = 0;

  /// Drive the transport until every in-flight message is delivered. The
  /// scatter-gather coordinator calls this between scatter and gather; for
  /// LoopbackTransport it is a no-op because dispatch is synchronous.
  virtual void run_until_idle() = 0;

  [[nodiscard]] virtual TransferStats stats() const = 0;

  /// Mirror transfer accounting into `registry` under "net." (see
  /// Network::attach_metrics). The registry must outlive the transport.
  virtual void attach_metrics(metrics::MetricsRegistry& registry) = 0;
};

/// Transport over the simulated WAN: every send is a Network store-and-forward
/// transfer on virtual time. Not thread-safe (the simulator is the single
/// driver, as everywhere else in the sim stack).
class SimTransport final : public Transport {
 public:
  /// `network` must outlive the transport.
  explicit SimTransport(Network& network) noexcept : network_(&network) {}

  SimTime send(NodeId from, NodeId to, std::uint64_t bytes,
               DeliveryCallback on_delivered = nullptr) override;
  SimTime send_message(NodeId from, NodeId to,
                       std::vector<std::uint8_t> payload) override;
  void bind(NodeId node, MessageHandler handler) override;
  void unbind(NodeId node) override;
  [[nodiscard]] SimDuration transfer_time_unloaded(
      NodeId from, NodeId to, std::uint64_t bytes) const override;
  [[nodiscard]] SimTime now() const override;
  void run_until_idle() override;
  [[nodiscard]] TransferStats stats() const override { return network_->stats(); }
  void attach_metrics(metrics::MetricsRegistry& registry) override {
    network_->attach_metrics(registry);
  }

  [[nodiscard]] Network& network() noexcept { return *network_; }

 private:
  Network* network_;
  std::unordered_map<NodeId, MessageHandler> handlers_;
};

/// In-process transport: zero latency, synchronous dispatch on the caller's
/// thread. Nodes are plain NodeId values — no topology required. Thread-safe:
/// concurrent senders only contend on the stats/handler lock; handlers run
/// outside it (a handler may itself send).
class LoopbackTransport final : public Transport {
 public:
  SimTime send(NodeId from, NodeId to, std::uint64_t bytes,
               DeliveryCallback on_delivered = nullptr) override;
  SimTime send_message(NodeId from, NodeId to,
                       std::vector<std::uint8_t> payload) override;
  void bind(NodeId node, MessageHandler handler) override;
  void unbind(NodeId node) override;
  [[nodiscard]] SimDuration transfer_time_unloaded(
      NodeId from, NodeId to, std::uint64_t bytes) const override;
  [[nodiscard]] SimTime now() const override { return 0; }
  void run_until_idle() override {}  // dispatch is synchronous
  [[nodiscard]] TransferStats stats() const override;
  void attach_metrics(metrics::MetricsRegistry& registry) override;

 private:
  /// Handler map and stats only — never held across a handler dispatch, so
  /// handlers may themselves send (see send_message).
  mutable Mutex mu_{lockrank::kTransport, "transport.loopback"};
  std::unordered_map<NodeId, MessageHandler> handlers_ MEGADS_GUARDED_BY(mu_);
  TransferStats stats_ MEGADS_GUARDED_BY(mu_);
  metrics::Counter* metric_messages_ MEGADS_GUARDED_BY(mu_) = nullptr;
  metrics::Counter* metric_payload_bytes_ MEGADS_GUARDED_BY(mu_) = nullptr;
};

}  // namespace megads::net
