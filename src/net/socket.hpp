// Thin POSIX TCP helpers shared by the SocketTransport and the FlowQL
// serving tier: RAII fds, listen/connect with ephemeral-port support,
// non-blocking mode, and EINTR-safe read/write wrappers that report
// would-block and peer-close as values instead of errno spelunking at every
// call site. Everything here is loopback/LAN plumbing — no name resolution,
// numeric IPv4 host strings only.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

namespace megads::net {

/// Owning file descriptor. Move-only; closes on destruction.
class ScopedFd {
 public:
  ScopedFd() noexcept = default;
  explicit ScopedFd(int fd) noexcept : fd_(fd) {}
  ~ScopedFd() { reset(); }

  ScopedFd(ScopedFd&& other) noexcept : fd_(other.release()) {}
  ScopedFd& operator=(ScopedFd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.release();
    }
    return *this;
  }
  ScopedFd(const ScopedFd&) = delete;
  ScopedFd& operator=(const ScopedFd&) = delete;

  [[nodiscard]] int get() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int release() noexcept {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void reset(int fd = -1) noexcept;

 private:
  int fd_ = -1;
};

/// Listening TCP socket bound to `host:port` (port 0 = kernel-assigned).
/// Returns the fd and the actual bound port. Throws Error on failure.
[[nodiscard]] std::pair<ScopedFd, std::uint16_t> tcp_listen(
    const std::string& host, std::uint16_t port, int backlog = 1024);

/// Blocking TCP connect to a numeric IPv4 `host:port`. Throws NotFoundError
/// when the peer is unreachable.
[[nodiscard]] ScopedFd tcp_connect(const std::string& host,
                                   std::uint16_t port);

void set_nonblocking(int fd);
/// Disable Nagle — every protocol here is latency-bound request/response.
void set_nodelay(int fd);

/// Outcome of one read/write attempt on a non-blocking socket.
struct IoResult {
  std::size_t bytes = 0;   ///< transferred this call
  bool closed = false;     ///< peer closed (read: EOF; write: EPIPE/reset)
  bool would_block = false;
};

/// EINTR-safe single read. Never blocks on a non-blocking fd.
[[nodiscard]] IoResult read_some(int fd, std::uint8_t* buf, std::size_t len);
/// EINTR-safe single write (MSG_NOSIGNAL — a dead peer is a value, not a
/// SIGPIPE). Never blocks on a non-blocking fd.
[[nodiscard]] IoResult write_some(int fd, const std::uint8_t* buf,
                                  std::size_t len);

/// Self-wake pipe for poll loops: writers call wake() from any thread; the
/// loop polls read_fd() and drains with drain(). Both ends non-blocking.
class WakePipe {
 public:
  WakePipe();
  [[nodiscard]] int read_fd() const noexcept { return read_end_.get(); }
  /// Async-signal-safe single-byte write; a full pipe still wakes the loop.
  void wake() noexcept;
  /// Discard every pending wake byte.
  void drain() noexcept;

 private:
  ScopedFd read_end_;
  ScopedFd write_end_;
};

}  // namespace megads::net
