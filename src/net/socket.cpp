#include "net/socket.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/error.hpp"

namespace megads::net {

namespace {

sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw Error("socket: not a numeric IPv4 host: " + host);
  }
  return addr;
}

}  // namespace

void ScopedFd::reset(int fd) noexcept {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

std::pair<ScopedFd, std::uint16_t> tcp_listen(const std::string& host,
                                              std::uint16_t port,
                                              int backlog) {
  ScopedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) throw Error("socket: cannot create listen socket");
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = make_addr(host, port);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    throw Error("socket: bind " + host + ":" + std::to_string(port) +
                " failed: " + std::strerror(errno));
  }
  if (::listen(fd.get(), backlog) != 0) {
    throw Error(std::string("socket: listen failed: ") + std::strerror(errno));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    throw Error("socket: getsockname failed");
  }
  return {std::move(fd), ntohs(bound.sin_port)};
}

ScopedFd tcp_connect(const std::string& host, std::uint16_t port) {
  ScopedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) throw Error("socket: cannot create socket");
  sockaddr_in addr = make_addr(host, port);
  int rc = 0;
  do {
    rc = ::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    throw NotFoundError("socket: connect " + host + ":" +
                        std::to_string(port) + " failed: " +
                        std::strerror(errno));
  }
  return fd;
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    throw Error("socket: cannot set O_NONBLOCK");
  }
}

void set_nodelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

IoResult read_some(int fd, std::uint8_t* buf, std::size_t len) {
  IoResult result;
  for (;;) {
    const ssize_t n = ::read(fd, buf, len);
    if (n > 0) {
      result.bytes = static_cast<std::size_t>(n);
      return result;
    }
    if (n == 0) {
      result.closed = true;
      return result;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      result.would_block = true;
      return result;
    }
    result.closed = true;  // ECONNRESET & friends: treat as peer gone
    return result;
  }
}

IoResult write_some(int fd, const std::uint8_t* buf, std::size_t len) {
  IoResult result;
  for (;;) {
    const ssize_t n = ::send(fd, buf, len, MSG_NOSIGNAL);
    if (n >= 0) {
      result.bytes = static_cast<std::size_t>(n);
      return result;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      result.would_block = true;
      return result;
    }
    result.closed = true;  // EPIPE/ECONNRESET: peer gone
    return result;
  }
}

WakePipe::WakePipe() {
  int fds[2];
  if (::pipe(fds) != 0) throw Error("socket: cannot create wake pipe");
  read_end_.reset(fds[0]);
  write_end_.reset(fds[1]);
  set_nonblocking(read_end_.get());
  set_nonblocking(write_end_.get());
}

void WakePipe::wake() noexcept {
  const std::uint8_t byte = 1;
  // A full pipe already guarantees a pending wake; ignore the result.
  [[maybe_unused]] const ssize_t n = ::write(write_end_.get(), &byte, 1);
}

void WakePipe::drain() noexcept {
  std::uint8_t buf[256];
  while (::read(read_end_.get(), buf, sizeof(buf)) > 0) {
  }
}

}  // namespace megads::net
