#include "net/framing.hpp"

#include <cstring>

#include "common/error.hpp"

namespace megads::net {

namespace {

std::uint32_t read_u32le(const std::uint8_t* p) {
  return std::uint32_t{p[0]} | (std::uint32_t{p[1]} << 8) |
         (std::uint32_t{p[2]} << 16) | (std::uint32_t{p[3]} << 24);
}

void put_u32le(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

}  // namespace

void append_frame_header(std::vector<std::uint8_t>& out,
                         std::size_t payload_len) {
  expects(payload_len <= 0xFFFF'FFFFu, "frame payload too large for u32");
  put_u32le(out, kFrameMagic);
  put_u32le(out, static_cast<std::uint32_t>(payload_len));
}

std::vector<std::uint8_t> encode_frame(
    const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> out;
  out.reserve(kFrameHeaderBytes + payload.size());
  append_frame_header(out, payload.size());
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

void FrameReassembler::check_header() {
  const std::uint8_t* head = buffer_.data() + consumed_;
  if (read_u32le(head) != kFrameMagic) {
    poisoned_ = true;
    throw ParseError("frame: bad magic");
  }
  const std::uint32_t len = read_u32le(head + 4);
  if (len > max_payload_bytes_) {
    poisoned_ = true;
    throw ParseError("frame: declared payload exceeds limit");
  }
  header_checked_ = true;
}

void FrameReassembler::feed(const std::uint8_t* data, std::size_t len) {
  if (poisoned_) throw ParseError("frame: stream already failed");
  if (len == 0) return;
  // Reclaim consumed prefix before growing — keeps the buffer bounded by one
  // partial frame plus whatever one feed() delivered.
  if (consumed_ > 0 && consumed_ == buffer_.size()) {
    buffer_.clear();
    consumed_ = 0;
  } else if (consumed_ >= 4096) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), data, data + len);
  // Validate the header of the frame under assembly as soon as it is whole:
  // hostile prefixes fail before any payload accumulates.
  if (!header_checked_ && pending_bytes() >= kFrameHeaderBytes) check_header();
}

std::optional<std::vector<std::uint8_t>> FrameReassembler::next() {
  if (poisoned_) throw ParseError("frame: stream already failed");
  if (pending_bytes() < kFrameHeaderBytes) return std::nullopt;
  if (!header_checked_) check_header();
  const std::uint8_t* head = buffer_.data() + consumed_;
  const std::uint32_t len = read_u32le(head + 4);
  if (pending_bytes() < kFrameHeaderBytes + len) return std::nullopt;
  std::vector<std::uint8_t> payload(head + kFrameHeaderBytes,
                                    head + kFrameHeaderBytes + len);
  consumed_ += kFrameHeaderBytes + len;
  header_checked_ = false;
  // The next frame's header may already be complete; validate it eagerly so
  // back-to-back violations surface promptly — but deliver the payload that
  // DID complete first, and let the poison throw on the next call.
  if (pending_bytes() >= kFrameHeaderBytes) {
    try {
      check_header();
    } catch (const ParseError&) {
      // poisoned_ is set; every later feed()/next() throws.
    }
  }
  return payload;
}

}  // namespace megads::net
