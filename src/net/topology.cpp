#include "net/topology.hpp"

#include <algorithm>
#include <limits>
#include <queue>

namespace megads::net {

NodeId Topology::add_node(std::string name, int level) {
  nodes_.push_back(NodeInfo{std::move(name), level});
  adjacency_.emplace_back();
  return NodeId(static_cast<NodeId::underlying_type>(nodes_.size() - 1));
}

LinkId Topology::add_link(NodeId a, NodeId b, SimDuration latency,
                          double bandwidth_bps) {
  check_node(a);
  check_node(b);
  expects(a != b, "Topology::add_link: self-links are not allowed");
  expects(latency >= 0, "Topology::add_link: negative latency");
  expects(bandwidth_bps > 0.0, "Topology::add_link: bandwidth must be positive");
  links_.push_back(Link{a, b, latency, bandwidth_bps});
  const auto id = static_cast<LinkId>(links_.size() - 1);
  adjacency_[a.value()].push_back(id);
  adjacency_[b.value()].push_back(id);
  return id;
}

const NodeInfo& Topology::node(NodeId id) const {
  check_node(id);
  return nodes_[id.value()];
}

const Link& Topology::link(LinkId id) const {
  expects(id < links_.size(), "Topology::link: unknown link");
  return links_[id];
}

std::optional<NodeId> Topology::find_node(const std::string& name) const {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].name == name) {
      return NodeId(static_cast<NodeId::underlying_type>(i));
    }
  }
  return std::nullopt;
}

const std::vector<LinkId>& Topology::links_of(NodeId id) const {
  check_node(id);
  return adjacency_[id.value()];
}

void Topology::set_link_state(LinkId id, bool up) {
  expects(id < links_.size(), "Topology::set_link_state: unknown link");
  links_[id].up = up;
}

bool Topology::link_up(LinkId id) const {
  expects(id < links_.size(), "Topology::link_up: unknown link");
  return links_[id].up;
}

std::optional<std::vector<LinkId>> Topology::shortest_path(NodeId from,
                                                           NodeId to) const {
  check_node(from);
  check_node(to);
  if (from == to) return std::vector<LinkId>{};

  constexpr SimDuration kInf = std::numeric_limits<SimDuration>::max();
  std::vector<SimDuration> dist(nodes_.size(), kInf);
  std::vector<LinkId> via(nodes_.size(), std::numeric_limits<LinkId>::max());

  using Entry = std::pair<SimDuration, NodeId::underlying_type>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> frontier;
  dist[from.value()] = 0;
  frontier.emplace(0, from.value());

  while (!frontier.empty()) {
    const auto [d, u] = frontier.top();
    frontier.pop();
    if (d > dist[u]) continue;
    if (u == to.value()) break;
    for (const LinkId lid : adjacency_[u]) {
      const Link& l = links_[lid];
      if (!l.up) continue;  // failed links carry no traffic
      const auto v = l.other(NodeId(u)).value();
      const SimDuration nd = d + l.latency;
      if (nd < dist[v]) {
        dist[v] = nd;
        via[v] = lid;
        frontier.emplace(nd, v);
      }
    }
  }

  if (dist[to.value()] == kInf) return std::nullopt;

  std::vector<LinkId> path;
  for (NodeId cur = to; cur != from;) {
    const LinkId lid = via[cur.value()];
    path.push_back(lid);
    cur = links_[lid].other(cur);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

SimDuration Topology::path_latency(NodeId from, NodeId to) const {
  const auto path = shortest_path(from, to);
  if (!path) return kTimeNever;
  SimDuration total = 0;
  for (const LinkId lid : *path) total += links_[lid].latency;
  return total;
}

void Topology::check_node(NodeId id) const {
  expects(id.valid() && id.value() < nodes_.size(), "Topology: unknown node");
}

}  // namespace megads::net
