// SocketTransport — the PR 6 Transport contract over real TCP. Everything
// written against Transport (the partitioned FlowDB coordinator and servers,
// the replica installer, the serving tier's backends) runs unchanged over
// loopback, the simulated WAN, and — with this class — real sockets.
//
// One SocketTransport is one endpoint: a listening socket plus a poll-based
// event-loop thread with non-blocking I/O and per-connection read/write
// buffers. Any number of local NodeIds may be bound on one endpoint;
// add_peer() maps remote NodeIds to host:port. Connections are dialed on
// first send and reused; a connection learns its peer's node from the hello
// frame, so responses travel back over the socket the request arrived on
// (which is what makes run_until_idle()'s barrier sound, below).
//
// Wire format: the outer length-prefixed framing (net/framing.hpp) around a
// small typed payload — hello / message / volume / barrier / barrier-ack.
// The decoder follows the envelope-codec discipline: strict validation,
// hostile input tolerated by counting-and-dropping (a malformed frame closes
// the connection, never throws through the event loop).
//
// run_until_idle() — the scatter-gather pump — cannot watch a real network
// the way the simulator watches its event queue. Instead it runs barrier
// rounds: flush every outbound buffer, send a barrier frame on every live
// connection, and wait for the acks. A peer's event loop acks a barrier only
// after dispatching every frame that preceded it on that connection, and any
// replies those dispatches produced were enqueued — on the same TCP stream —
// before the ack. So when the ack arrives here, the replies have already been
// dispatched by our own loop. Rounds repeat until one completes with no new
// message traffic, which settles multi-hop cascades.
//
// send() is accounting-only by contract (the payload stays in-process); over
// TCP it ships a volume frame declaring the byte count so both endpoints'
// TransferStats agree, and the delivery callback fires immediately with the
// current wall-clock time — a real network cannot report remote delivery
// without an acknowledgement protocol, and the callers that care (the
// simulator stack) run over SimTransport.
//
// Thread-safe: senders serialize on mu_ only around buffer bookkeeping; the
// event loop never holds mu_ across a handler dispatch (handlers themselves
// send — the partition servers reply from inside on_message).
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/mutex.hpp"
#include "net/framing.hpp"
#include "net/socket.hpp"
#include "net/transport.hpp"

namespace megads::net {

class SocketTransport final : public Transport {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;  ///< 0 = kernel-assigned; see port()
    std::size_t max_frame_bytes = 64u << 20;
    /// Test hook: cap bytes per write() so frames tear across arbitrary
    /// boundaries (0 = no cap). The reassembly tests run with 1.
    std::size_t max_write_chunk = 0;
  };

  SocketTransport() : SocketTransport(Options()) {}
  explicit SocketTransport(Options options);
  ~SocketTransport() override;

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  /// Teach this endpoint where a remote node lives. Local (bound) nodes need
  /// no peer entry; sending to an unknown, unbound node raises NotFoundError.
  void add_peer(NodeId node, std::string host, std::uint16_t port);

  /// The actually-bound listen port (resolves port 0 requests).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] const std::string& host() const noexcept {
    return options_.host;
  }

  // --- Transport ---
  SimTime send(NodeId from, NodeId to, std::uint64_t bytes,
               DeliveryCallback on_delivered = nullptr) override;
  SimTime send_message(NodeId from, NodeId to,
                       std::vector<std::uint8_t> payload) override;
  void bind(NodeId node, MessageHandler handler) override;
  void unbind(NodeId node) override;
  [[nodiscard]] SimDuration transfer_time_unloaded(
      NodeId from, NodeId to, std::uint64_t bytes) const override;
  [[nodiscard]] SimTime now() const override;
  void run_until_idle() override;
  [[nodiscard]] TransferStats stats() const override;
  void attach_metrics(metrics::MetricsRegistry& registry) override;

  /// Malformed / undeliverable frames received and dropped (hostile-input
  /// tolerance introspection, mirroring Coordinator::dropped_messages).
  [[nodiscard]] std::uint64_t dropped_frames() const;

 private:
  struct Conn {
    ScopedFd fd;
    FrameReassembler reassembler;
    std::vector<std::uint8_t> outbound;  ///< pending bytes, mu_-guarded
    std::size_t out_pos = 0;
    NodeId peer;  ///< learned from the hello frame; invalid until then
    bool ready = false;
  };
  struct Barrier {
    std::size_t remaining = 0;  ///< acks outstanding
    std::set<int> fds;          ///< connections still owing an ack
  };
  struct Peer {
    std::string host;
    std::uint16_t port = 0;
  };

  void loop() MEGADS_EXCLUDES(mu_);
  /// Read everything available, dispatch complete frames. Returns false when
  /// the connection died (caller removes it).
  bool service_readable(int fd) MEGADS_EXCLUDES(mu_);
  bool flush_writable(int fd) MEGADS_EXCLUDES(mu_);
  void handle_frame(int fd, const std::vector<std::uint8_t>& payload)
      MEGADS_EXCLUDES(mu_);
  void drop_conn(int fd) MEGADS_EXCLUDES(mu_);
  /// Find-or-dial the connection for `to` and append `frame` to its
  /// outbound buffer; wakes the loop.
  void enqueue_to(NodeId to, const std::vector<std::uint8_t>& frame)
      MEGADS_EXCLUDES(mu_);
  void note_dropped_locked() MEGADS_REQUIRES(mu_);

  Options options_;
  std::uint16_t port_ = 0;
  ScopedFd listen_fd_;
  WakePipe wake_;
  std::thread loop_thread_;
  std::chrono::steady_clock::time_point start_;

  mutable Mutex mu_{lockrank::kTransport, "transport.socket"};
  mutable CondVar cv_;
  bool stopping_ MEGADS_GUARDED_BY(mu_) = false;
  std::map<int, std::shared_ptr<Conn>> conns_ MEGADS_GUARDED_BY(mu_);
  std::unordered_map<NodeId, MessageHandler> handlers_ MEGADS_GUARDED_BY(mu_);
  std::unordered_map<NodeId, Peer> peers_ MEGADS_GUARDED_BY(mu_);
  std::unordered_map<NodeId, int> conn_of_node_ MEGADS_GUARDED_BY(mu_);
  std::unordered_map<std::uint64_t, Barrier> barriers_ MEGADS_GUARDED_BY(mu_);
  std::uint64_t next_barrier_token_ MEGADS_GUARDED_BY(mu_) = 1;
  /// Message/volume frames sent + delivered — the barrier's idle detector.
  std::uint64_t activity_ MEGADS_GUARDED_BY(mu_) = 0;
  TransferStats stats_ MEGADS_GUARDED_BY(mu_);
  std::uint64_t dropped_frames_ MEGADS_GUARDED_BY(mu_) = 0;
  metrics::Counter* metric_messages_ MEGADS_GUARDED_BY(mu_) = nullptr;
  metrics::Counter* metric_payload_bytes_ MEGADS_GUARDED_BY(mu_) = nullptr;
  metrics::Counter* metric_dropped_ MEGADS_GUARDED_BY(mu_) = nullptr;
};

}  // namespace megads::net
