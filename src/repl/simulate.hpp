// The Fig. 6 loop as a replayable simulation: partition accesses are
// recorded, the policy predicts future accesses and decides on replication,
// replications are executed, and every access pays either the remote or the
// local path. Experiment E6 sweeps policies and workloads through this.
#pragma once

#include <span>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "repl/policy.hpp"
#include "trace/querygen.hpp"

namespace megads::repl {

/// WAN/latency cost model for one remote store pair.
struct CostModel {
  double wan_bytes_per_second = 125.0e6;   ///< ~1 Gbit/s
  SimDuration remote_rtt = 50 * kMillisecond;
  SimDuration local_latency = 1 * kMillisecond;

  [[nodiscard]] SimDuration remote_access_time(std::uint64_t bytes) const noexcept {
    return remote_rtt + static_cast<SimDuration>(
                            static_cast<double>(bytes) / wan_bytes_per_second *
                            static_cast<double>(kSecond));
  }
};

struct ReplicationOutcome {
  std::string policy;
  std::uint64_t shipped_bytes = 0;       ///< query results sent over the WAN
  std::uint64_t replicated_bytes = 0;    ///< partition copies sent over the WAN
  std::uint64_t remote_accesses = 0;
  std::uint64_t local_accesses = 0;
  std::uint64_t replications = 0;
  RunningStats access_latency;           ///< per-access latency (microseconds)

  /// The paper's headline metric: total WAN transfer volume.
  [[nodiscard]] std::uint64_t total_wan_bytes() const noexcept {
    return shipped_bytes + replicated_bytes;
  }
};

/// Replay `trace` against a policy. `partition_sizes[p]` is the byte size of
/// partition p (the replication "purchase price"). Partitions are announced
/// to the policy at their first appearance in the trace... created at time 0
/// of their spawn; the trace carries creation implicitly via first access.
ReplicationOutcome simulate_replication(const trace::QueryTrace& trace,
                                        std::span<const std::uint64_t> partition_sizes,
                                        ReplicationPolicy& policy,
                                        const CostModel& cost = {});

/// Offline optimum in WAN bytes: per partition, min(total future results,
/// partition size). Baseline for competitive ratios.
[[nodiscard]] std::uint64_t offline_optimal_bytes(
    const trace::QueryTrace& trace, std::span<const std::uint64_t> partition_sizes);

}  // namespace megads::repl
