#include "repl/simulate.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/error.hpp"

namespace megads::repl {

ReplicationOutcome simulate_replication(const trace::QueryTrace& trace,
                                        std::span<const std::uint64_t> partition_sizes,
                                        ReplicationPolicy& policy,
                                        const CostModel& cost) {
  ReplicationOutcome outcome;
  outcome.policy = policy.name();

  std::unordered_set<PartitionId> announced;
  std::unordered_set<PartitionId> replicated;

  for (const trace::AccessEvent& event : trace.events) {
    const std::size_t p = event.partition.value();
    expects(p < partition_sizes.size(),
            "simulate_replication: trace references unknown partition");
    const std::uint64_t size = partition_sizes[p];

    if (announced.insert(event.partition).second) {
      policy.on_partition_created(event.partition, event.time, size);
    }

    if (replicated.contains(event.partition)) {
      policy.observe_local_access(event.partition, event.time, event.result_bytes);
      outcome.local_accesses += 1;
      outcome.access_latency.add(static_cast<double>(cost.local_latency));
      continue;
    }

    if (policy.on_access(event.partition, event.time, event.result_bytes)) {
      // Replicate first (pay the partition transfer), then serve locally.
      replicated.insert(event.partition);
      outcome.replications += 1;
      outcome.replicated_bytes += size;
      const SimDuration latency =
          cost.remote_access_time(size) + cost.local_latency;
      outcome.local_accesses += 1;
      outcome.access_latency.add(static_cast<double>(latency));
      continue;
    }

    outcome.remote_accesses += 1;
    outcome.shipped_bytes += event.result_bytes;
    outcome.access_latency.add(
        static_cast<double>(cost.remote_access_time(event.result_bytes)));
  }
  return outcome;
}

std::uint64_t offline_optimal_bytes(const trace::QueryTrace& trace,
                                    std::span<const std::uint64_t> partition_sizes) {
  std::uint64_t total = 0;
  for (std::size_t p = 0; p < trace.bytes_per_partition.size(); ++p) {
    const std::uint64_t demand = trace.bytes_per_partition[p];
    if (demand == 0) continue;
    expects(p < partition_sizes.size(),
            "offline_optimal_bytes: missing partition size");
    total += std::min(demand, partition_sizes[p]);
  }
  return total;
}

}  // namespace megads::repl
