// ReplicaPlacer — drives replica placement of partition shards toward their
// queriers, turning the abstract ski-rental ReplicationPolicy decisions
// (Section VII) into Transport-level actions. The querier-side component
// (e.g. the scatter-gather Coordinator) reports every remote access; the
// placer keeps the policy's books and answers "replicate this shard here,
// now?" — renting is shipping query results forever, buying is one replica
// copy plus local serving.
//
// The placer is deliberately transport-aware but data-oblivious: it prices
// the buy via Transport::transfer_time_unloaded and accounts the copy via
// Transport::send, while the caller moves the actual records (kReplicaFetch /
// kReplicaData envelopes). Thread-safe: queriers on different threads may
// share one placer over a LoopbackTransport.
#pragma once

#include <unordered_set>

#include "common/mutex.hpp"
#include "net/transport.hpp"
#include "repl/policy.hpp"

namespace megads::repl {

class ReplicaPlacer {
 public:
  /// Both must outlive the placer.
  ReplicaPlacer(ReplicationPolicy& policy, net::Transport& transport);

  /// Register a shard the first time it is seen (idempotent). `size_bytes`
  /// is the replica-copy volume the buy would ship.
  void track(PartitionId partition, SimTime now, std::uint64_t size_bytes);

  /// A remote access of `result_bytes` is about to be served. True means
  /// "buy": replicate the shard to the querier before serving. At most one
  /// true per partition; afterwards report via observe_local().
  [[nodiscard]] bool should_replicate(PartitionId partition, SimTime now,
                                      std::uint64_t result_bytes);

  /// An access served from the local replica (after the buy).
  void observe_local(PartitionId partition, SimTime now,
                     std::uint64_t result_bytes);

  [[nodiscard]] bool is_replicated(PartitionId partition) const;
  [[nodiscard]] std::size_t replicated_count() const;

  /// Unloaded wire time of copying `bytes` owner -> querier (the buy's
  /// latency price; policies already account its byte price).
  [[nodiscard]] SimDuration copy_cost(NodeId owner, NodeId querier,
                                      std::uint64_t bytes) const;

 private:
  /// Policies keep unsynchronized books, so the pointee is guarded too.
  ReplicationPolicy* policy_ MEGADS_PT_GUARDED_BY(mu_);
  net::Transport* transport_;
  mutable Mutex mu_{lockrank::kReplicaPlacer, "repl.placer"};
  std::unordered_set<PartitionId> tracked_ MEGADS_GUARDED_BY(mu_);
  std::unordered_set<PartitionId> replicated_ MEGADS_GUARDED_BY(mu_);
};

}  // namespace megads::repl
