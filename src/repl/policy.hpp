// Adaptive-replication policies (Section VII).
//
// The decision problem per partition is the ski-rental problem: shipping a
// query result is renting; replicating the partition is buying. Policies:
//
//   * AlwaysShip        — never replicate (pure query shipping).
//   * AlwaysReplicate   — replicate on the first remote access.
//   * BreakEvenPolicy   — Karlin et al.'s deterministic 2-competitive rule:
//                         replicate once the bytes shipped for a partition
//                         reach alpha x the partition's size (alpha = 1 is
//                         the classical break-even point).
//   * DistributionPolicy— the paper's proposal: "the aggregate result size
//                         for older partitions are from a distribution that
//                         can be used to predict future access for partitions
//                         created at a later date." It learns the empirical
//                         distribution of total-shipped/size ratios from
//                         matured partitions and picks the threshold that
//                         minimizes average-case cost (Fujiwara-Iwama style).
//   * OraclePolicy      — offline optimum: knows each partition's future
//                         shipped volume and buys up front iff that exceeds
//                         the partition size. Lower bound for competitive
//                         ratios.
//
// The policy is consulted *before* each remote access is served: returning
// true means "replicate now; serve this and later accesses locally".
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace megads::repl {

class ReplicationPolicy {
 public:
  virtual ~ReplicationPolicy() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// A partition came into existence (sealed at a remote store).
  virtual void on_partition_created(PartitionId partition, SimTime now,
                                    std::uint64_t size_bytes);

  /// A remote access of `result_bytes` is about to be served. Return true to
  /// replicate the partition first.
  [[nodiscard]] virtual bool on_access(PartitionId partition, SimTime now,
                                       std::uint64_t result_bytes) = 0;

  /// An access served locally (after replication). The manager records these
  /// too (Fig. 6), so adaptive policies may use them to keep their demand
  /// distribution unbiased. Default: bookkeeping only.
  virtual void observe_local_access(PartitionId partition, SimTime now,
                                    std::uint64_t result_bytes);

 protected:
  struct Tracked {
    SimTime created = 0;
    std::uint64_t size_bytes = 0;
    std::uint64_t shipped_bytes = 0;  ///< bytes actually sent over the WAN
    std::uint64_t demand_bytes = 0;   ///< bytes requested, local or remote
    std::uint64_t accesses = 0;
  };
  /// Access bookkeeping shared by the adaptive policies (the "partition
  /// accesses" records of Fig. 6, kept by the manager).
  std::unordered_map<PartitionId, Tracked> tracked_;
};

class AlwaysShip final : public ReplicationPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "always-ship"; }
  [[nodiscard]] bool on_access(PartitionId, SimTime, std::uint64_t) override;
};

class AlwaysReplicate final : public ReplicationPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "always-replicate"; }
  [[nodiscard]] bool on_access(PartitionId, SimTime, std::uint64_t) override;
};

class BreakEvenPolicy final : public ReplicationPolicy {
 public:
  explicit BreakEvenPolicy(double alpha = 1.0);
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] bool on_access(PartitionId partition, SimTime now,
                               std::uint64_t result_bytes) override;

 private:
  double alpha_;
};

class DistributionPolicy final : public ReplicationPolicy {
 public:
  struct Config {
    /// Partitions older than this are treated as completed samples.
    SimDuration maturity = 2 * kHour;
    /// Refit the threshold at most this often.
    SimDuration refit_interval = 30 * kMinute;
    /// Threshold used until enough samples exist (break-even fallback).
    double initial_threshold = 1.0;
    std::size_t min_samples = 10;
  };

  DistributionPolicy() : DistributionPolicy(Config{}) {}
  explicit DistributionPolicy(Config config);
  [[nodiscard]] std::string name() const override { return "distribution"; }
  [[nodiscard]] bool on_access(PartitionId partition, SimTime now,
                               std::uint64_t result_bytes) override;

  /// Current normalized threshold (shipped/size ratio that triggers buying).
  [[nodiscard]] double threshold() const noexcept { return threshold_; }

 private:
  void maybe_refit(SimTime now);
  /// Threshold minimizing empirical E[min(R, T) + 1{R > T}] over ratios R.
  [[nodiscard]] static double optimal_threshold(std::vector<double> ratios);

  Config config_;
  double threshold_;
  SimTime last_fit_ = -1;
};

class OraclePolicy final : public ReplicationPolicy {
 public:
  /// `future_shipped_bytes[p]` = total result bytes partition p would ship if
  /// never replicated (ground truth from the trace generator).
  explicit OraclePolicy(std::vector<std::uint64_t> future_shipped_bytes);
  [[nodiscard]] std::string name() const override { return "oracle"; }
  [[nodiscard]] bool on_access(PartitionId partition, SimTime now,
                               std::uint64_t result_bytes) override;

 private:
  std::vector<std::uint64_t> future_;
};

}  // namespace megads::repl
