#include "repl/policy.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"

namespace megads::repl {

void ReplicationPolicy::on_partition_created(PartitionId partition, SimTime now,
                                             std::uint64_t size_bytes) {
  Tracked tracked;
  tracked.created = now;
  tracked.size_bytes = size_bytes;
  tracked_[partition] = tracked;
}

void ReplicationPolicy::observe_local_access(PartitionId partition, SimTime /*now*/,
                                             std::uint64_t result_bytes) {
  auto& tracked = tracked_[partition];
  tracked.demand_bytes += result_bytes;
  tracked.accesses += 1;
}

bool AlwaysShip::on_access(PartitionId partition, SimTime /*now*/,
                           std::uint64_t result_bytes) {
  auto& tracked = tracked_[partition];
  tracked.shipped_bytes += result_bytes;
  tracked.demand_bytes += result_bytes;
  tracked.accesses += 1;
  return false;
}

bool AlwaysReplicate::on_access(PartitionId partition, SimTime /*now*/,
                                std::uint64_t result_bytes) {
  auto& tracked = tracked_[partition];
  tracked.demand_bytes += result_bytes;
  tracked.accesses += 1;
  return true;
}

BreakEvenPolicy::BreakEvenPolicy(double alpha) : alpha_(alpha) {
  expects(alpha > 0.0, "BreakEvenPolicy: alpha must be positive");
}

std::string BreakEvenPolicy::name() const {
  return alpha_ == 1.0 ? "break-even" : "break-even(a=" + std::to_string(alpha_) + ")";
}

bool BreakEvenPolicy::on_access(PartitionId partition, SimTime /*now*/,
                                std::uint64_t result_bytes) {
  auto& tracked = tracked_[partition];
  tracked.demand_bytes += result_bytes;
  tracked.accesses += 1;
  const double after =
      static_cast<double>(tracked.shipped_bytes + result_bytes);
  if (tracked.size_bytes > 0 &&
      after > alpha_ * static_cast<double>(tracked.size_bytes)) {
    return true;  // buy: cumulated rent would exceed the purchase price
  }
  tracked.shipped_bytes += result_bytes;
  return false;
}

DistributionPolicy::DistributionPolicy(Config config)
    : config_(config), threshold_(config.initial_threshold) {
  expects(config_.initial_threshold > 0.0,
          "DistributionPolicy: initial threshold must be positive");
  expects(config_.maturity > 0 && config_.refit_interval > 0,
          "DistributionPolicy: maturity and refit interval must be positive");
}

double DistributionPolicy::optimal_threshold(std::vector<double> ratios) {
  // Empirical cost of "buy once cumulated rent reaches T" against demand R:
  //   cost(R, T) = R            when R <= T   (never bought)
  //              = T + 1        when R >  T   (rented T, then bought for 1)
  // cost is piecewise linear and increasing between sample points, so the
  // optimum lies at T = 0 or at one of the samples (T = max sample covers
  // the "never buy" strategy).
  std::sort(ratios.begin(), ratios.end());
  const auto n = static_cast<double>(ratios.size());
  std::vector<double> prefix(ratios.size() + 1, 0.0);
  for (std::size_t i = 0; i < ratios.size(); ++i) {
    prefix[i + 1] = prefix[i] + ratios[i];
  }

  double best_threshold = 0.0;
  double best_cost = std::numeric_limits<double>::infinity();
  const auto consider = [&](double threshold) {
    // Samples <= threshold pay their own rent; the rest pay threshold + 1.
    const auto it = std::upper_bound(ratios.begin(), ratios.end(), threshold);
    const auto below = static_cast<std::size_t>(it - ratios.begin());
    const double cost = prefix[below] + static_cast<double>(ratios.size() - below) *
                                            (threshold + 1.0);
    if (cost / n < best_cost) {
      best_cost = cost / n;
      best_threshold = threshold;
    }
  };
  consider(0.0);
  for (const double r : ratios) consider(r);
  // Degenerate guard: a zero threshold means "replicate on first touch".
  return std::max(best_threshold, 1e-9);
}

void DistributionPolicy::maybe_refit(SimTime now) {
  if (last_fit_ >= 0 && now < last_fit_ + config_.refit_interval) return;
  last_fit_ = now;
  std::vector<double> ratios;
  for (const auto& [partition, tracked] : tracked_) {
    if (tracked.size_bytes == 0) continue;
    if (tracked.created + config_.maturity > now) continue;
    ratios.push_back(static_cast<double>(tracked.demand_bytes) /
                     static_cast<double>(tracked.size_bytes));
  }
  if (ratios.size() < config_.min_samples) return;
  threshold_ = optimal_threshold(std::move(ratios));
}

bool DistributionPolicy::on_access(PartitionId partition, SimTime now,
                                   std::uint64_t result_bytes) {
  maybe_refit(now);
  auto& tracked = tracked_[partition];
  tracked.demand_bytes += result_bytes;
  tracked.accesses += 1;
  const double after = static_cast<double>(tracked.shipped_bytes + result_bytes);
  if (tracked.size_bytes > 0 &&
      after > threshold_ * static_cast<double>(tracked.size_bytes)) {
    return true;
  }
  tracked.shipped_bytes += result_bytes;
  return false;
}

OraclePolicy::OraclePolicy(std::vector<std::uint64_t> future_shipped_bytes)
    : future_(std::move(future_shipped_bytes)) {}

bool OraclePolicy::on_access(PartitionId partition, SimTime /*now*/,
                             std::uint64_t result_bytes) {
  auto& tracked = tracked_[partition];
  tracked.demand_bytes += result_bytes;
  tracked.accesses += 1;
  const std::uint64_t future =
      partition.value() < future_.size() ? future_[partition.value()] : 0;
  if (future > tracked.size_bytes) return true;  // buying is cheaper, do it first
  tracked.shipped_bytes += result_bytes;
  return false;
}

}  // namespace megads::repl
