#include "repl/placement.hpp"

namespace megads::repl {

ReplicaPlacer::ReplicaPlacer(ReplicationPolicy& policy, net::Transport& transport)
    : policy_(&policy), transport_(&transport) {}

void ReplicaPlacer::track(PartitionId partition, SimTime now,
                          std::uint64_t size_bytes) {
  const MutexLock lock(mu_);
  if (!tracked_.insert(partition).second) return;
  policy_->on_partition_created(partition, now, size_bytes);
}

bool ReplicaPlacer::should_replicate(PartitionId partition, SimTime now,
                                     std::uint64_t result_bytes) {
  const MutexLock lock(mu_);
  if (replicated_.contains(partition)) {
    // Already bought — the caller should have served locally; keep the books
    // consistent anyway.
    policy_->observe_local_access(partition, now, result_bytes);
    return false;
  }
  if (policy_->on_access(partition, now, result_bytes)) {
    replicated_.insert(partition);
    return true;
  }
  return false;
}

void ReplicaPlacer::observe_local(PartitionId partition, SimTime now,
                                  std::uint64_t result_bytes) {
  const MutexLock lock(mu_);
  policy_->observe_local_access(partition, now, result_bytes);
}

bool ReplicaPlacer::is_replicated(PartitionId partition) const {
  const MutexLock lock(mu_);
  return replicated_.contains(partition);
}

std::size_t ReplicaPlacer::replicated_count() const {
  const MutexLock lock(mu_);
  return replicated_.size();
}

SimDuration ReplicaPlacer::copy_cost(NodeId owner, NodeId querier,
                                     std::uint64_t bytes) const {
  return transport_->transfer_time_unloaded(owner, querier, bytes);
}

}  // namespace megads::repl
