// Synthetic network-flow workload (substitute for router flow exports).
//
// The generator produces the statistical structure Flowtree's behaviour
// depends on, with explicit knobs:
//   * source addresses drawn from a two-level hierarchy — Zipf over /16
//     networks, then Zipf over hosts inside the network — so hierarchical
//     heavy hitters exist by construction;
//   * destinations drawn from a Zipf-ranked set of services (address, port,
//     protocol), mimicking popular applications;
//   * Poisson flow arrivals; Pareto (heavy-tailed) packet counts.
//
// Different sites (routers) share the service mix but rotate part of the
// source-network ranking, so summaries from two sites overlap without being
// identical — the regime the Merge/Diff experiments need.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "flow/flowkey.hpp"

namespace megads::trace {

struct FlowGenConfig {
  std::uint64_t seed = 1;
  std::uint32_t site = 0;           ///< site id; rotates source popularity
  std::size_t src_networks = 64;    ///< number of /16 source networks
  std::size_t hosts_per_network = 256;
  double network_skew = 1.2;        ///< Zipf exponent over networks
  double host_skew = 1.0;           ///< Zipf exponent over hosts
  std::size_t services = 32;        ///< number of (dst, port, proto) services
  double service_skew = 1.1;
  double flows_per_second = 1000.0; ///< Poisson arrival rate
  double packet_alpha = 1.3;        ///< Pareto shape of packets per flow
  double mean_packet_bytes = 700.0;
  /// Fraction of the source-network ranking rotated per site step.
  double site_rotation = 0.25;
};

/// Streaming generator of FlowRecords with increasing timestamps.
class FlowGenerator {
 public:
  explicit FlowGenerator(FlowGenConfig config);

  /// Next flow observation (arrival times advance by Exp(rate)).
  flow::FlowRecord next();

  /// Generate `n` records starting at the current virtual time.
  std::vector<flow::FlowRecord> generate(std::size_t n);

  /// Generate all records arriving within [now, now + window).
  std::vector<flow::FlowRecord> generate_for(SimDuration window);

  [[nodiscard]] SimTime now() const noexcept { return now_; }
  [[nodiscard]] const FlowGenConfig& config() const noexcept { return config_; }

  /// The i-th source network as a /16 prefix (popularity rank order for
  /// this site). Exposed so experiments can ask ground-truth questions.
  [[nodiscard]] flow::Prefix network(std::size_t rank) const;

 private:
  FlowGenConfig config_;
  Rng rng_;
  ZipfSampler network_zipf_;
  ZipfSampler host_zipf_;
  ZipfSampler service_zipf_;
  std::vector<std::uint32_t> network_bases_;  ///< /16 bases, rank-ordered per site
  struct Service {
    std::uint32_t address;
    std::uint16_t port;
    std::uint8_t proto;
  };
  std::vector<Service> services_;
  SimTime now_ = 0;
};

}  // namespace megads::trace
