#include "trace/csv.hpp"

#include <charconv>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace megads::trace {

namespace {

constexpr const char* kHeader = "timestamp,proto,src,src_port,dst,dst_port,packets,bytes";

std::vector<std::string> split(const std::string& line, char sep) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = line.find(sep, start);
    if (pos == std::string::npos) {
      fields.push_back(line.substr(start));
      break;
    }
    fields.push_back(line.substr(start, pos - start));
    start = pos + 1;
  }
  return fields;
}

template <class T>
T parse_number(const std::string& text, const char* what) {
  T value{};
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    throw ParseError(std::string("flow CSV: malformed ") + what + ": " + text);
  }
  return value;
}

}  // namespace

void write_flow_csv(std::ostream& out, const std::vector<flow::FlowRecord>& records) {
  out << kHeader << '\n';
  for (const auto& record : records) {
    const auto& key = record.key;
    out << record.timestamp << ',' << int{key.proto().value_or(0)} << ','
        << key.src().address().to_string() << ',' << key.src_port().value_or(0)
        << ',' << key.dst().address().to_string() << ','
        << key.dst_port().value_or(0) << ',' << record.packets << ','
        << record.bytes << '\n';
  }
}

void write_flow_csv_file(const std::string& path,
                         const std::vector<flow::FlowRecord>& records) {
  std::ofstream out(path);
  if (!out) throw Error("flow CSV: cannot open for writing: " + path);
  write_flow_csv(out, records);
}

std::vector<flow::FlowRecord> read_flow_csv(std::istream& in) {
  std::vector<flow::FlowRecord> records;
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (first) {
      first = false;
      if (line == kHeader) continue;  // header is optional
    }
    const auto fields = split(line, ',');
    if (fields.size() != 8) {
      throw ParseError("flow CSV: expected 8 fields, got " +
                       std::to_string(fields.size()));
    }
    flow::FlowRecord record;
    record.timestamp = parse_number<std::int64_t>(fields[0], "timestamp");
    record.key = flow::FlowKey::from_tuple(
        parse_number<std::uint8_t>(fields[1], "proto"), flow::IPv4::parse(fields[2]),
        parse_number<std::uint16_t>(fields[3], "src_port"),
        flow::IPv4::parse(fields[4]),
        parse_number<std::uint16_t>(fields[5], "dst_port"));
    record.packets = parse_number<std::uint64_t>(fields[6], "packets");
    record.bytes = parse_number<std::uint64_t>(fields[7], "bytes");
    records.push_back(record);
  }
  return records;
}

std::vector<flow::FlowRecord> read_flow_csv_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("flow CSV: cannot open for reading: " + path);
  return read_flow_csv(in);
}

}  // namespace megads::trace
