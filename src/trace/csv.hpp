// CSV (de)serialization of flow traces, so examples can persist generated
// workloads and re-run experiments on identical input.
//
// Format (one header line, then one row per record):
//   timestamp,proto,src,src_port,dst,dst_port,packets,bytes
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "flow/flowkey.hpp"

namespace megads::trace {

void write_flow_csv(std::ostream& out, const std::vector<flow::FlowRecord>& records);
void write_flow_csv_file(const std::string& path,
                         const std::vector<flow::FlowRecord>& records);

/// Throws ParseError on malformed rows.
[[nodiscard]] std::vector<flow::FlowRecord> read_flow_csv(std::istream& in);
[[nodiscard]] std::vector<flow::FlowRecord> read_flow_csv_file(const std::string& path);

}  // namespace megads::trace
