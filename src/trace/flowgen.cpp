#include "trace/flowgen.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/error.hpp"
#include "common/hash.hpp"

namespace megads::trace {

namespace {

// Well-known service ports, cycled through before random high ports.
constexpr std::uint16_t kCommonPorts[] = {443, 80, 53, 22, 25, 123, 3306, 5432,
                                          8080, 8443, 993, 389};

}  // namespace

FlowGenerator::FlowGenerator(FlowGenConfig config)
    : config_(config),
      rng_(config.seed),
      network_zipf_(config.src_networks, config.network_skew),
      host_zipf_(config.hosts_per_network, config.host_skew),
      service_zipf_(config.services, config.service_skew) {
  expects(config_.flows_per_second > 0.0,
          "FlowGenerator: flows_per_second must be positive");
  expects(config_.hosts_per_network > 0 && config_.hosts_per_network <= 65536,
          "FlowGenerator: hosts_per_network must fit a /16");

  // Distinct /16 network bases, deterministic given the seed. The same seed
  // yields the same networks for every site; only the ranking rotates.
  Rng layout(config_.seed ^ 0xabcdef1234567890ULL);
  std::unordered_set<std::uint32_t> seen;
  while (network_bases_.size() < config_.src_networks) {
    const auto base = static_cast<std::uint32_t>(layout.next()) & 0xffff0000u;
    if (base != 0 && seen.insert(base).second) network_bases_.push_back(base);
  }

  // Rotate a prefix-dependent share of the ranking per site: site k shifts
  // the top `site_rotation` fraction of ranks by k positions.
  if (config_.site > 0 && config_.src_networks > 1) {
    const auto window = std::max<std::size_t>(
        2, static_cast<std::size_t>(std::ceil(
               static_cast<double>(config_.src_networks) * config_.site_rotation)));
    const std::size_t shift = config_.site % window;
    std::rotate(network_bases_.begin(), network_bases_.begin() + static_cast<long>(shift),
                network_bases_.begin() + static_cast<long>(window));
  }

  // Services: clustered destinations in a handful of /24s.
  Rng service_rng(config_.seed ^ 0x5ca1ab1e0ddba11ULL);
  for (std::size_t i = 0; i < config_.services; ++i) {
    Service service;
    const std::uint32_t cluster =
        0xc0000000u | ((static_cast<std::uint32_t>(service_rng.uniform(8)) & 0xff) << 16);
    service.address = cluster | (static_cast<std::uint32_t>(service_rng.uniform(256)) << 8) |
                      static_cast<std::uint32_t>(service_rng.uniform(254) + 1);
    service.port = i < std::size(kCommonPorts)
                       ? kCommonPorts[i]
                       : static_cast<std::uint16_t>(1024 + service_rng.uniform(64512));
    service.proto = service_rng.bernoulli(0.8) ? 6 : 17;  // TCP : UDP
    services_.push_back(service);
  }
}

flow::Prefix FlowGenerator::network(std::size_t rank) const {
  expects(rank < network_bases_.size(), "FlowGenerator::network: rank out of range");
  return flow::Prefix(flow::IPv4(network_bases_[rank]), 16);
}

flow::FlowRecord FlowGenerator::next() {
  const double gap_seconds = rng_.exponential(config_.flows_per_second);
  now_ += std::max<SimDuration>(
      1, static_cast<SimDuration>(gap_seconds * static_cast<double>(kSecond)));

  const std::size_t net_rank = network_zipf_(rng_);
  const std::size_t host_rank = host_zipf_(rng_);
  // Host ranks map to pseudo-random but stable offsets inside the /16.
  const auto host_offset = static_cast<std::uint32_t>(
      mix64(network_bases_[net_rank] ^ host_rank) %
      static_cast<std::uint64_t>(config_.hosts_per_network));
  const flow::IPv4 src(network_bases_[net_rank] | (host_offset & 0xffffu));

  const Service& service = services_[service_zipf_(rng_)];
  const auto src_port = static_cast<std::uint16_t>(32768 + rng_.uniform(28232));

  flow::FlowRecord record;
  record.key = flow::FlowKey::from_tuple(service.proto, src, src_port,
                                         flow::IPv4(service.address), service.port);
  record.packets = static_cast<std::uint64_t>(rng_.pareto(1.0, config_.packet_alpha));
  record.packets = std::max<std::uint64_t>(1, std::min<std::uint64_t>(record.packets, 1u << 20));
  const double bytes_per_packet =
      std::clamp(rng_.normal(config_.mean_packet_bytes, config_.mean_packet_bytes / 3.0),
                 40.0, 1500.0);
  record.bytes = static_cast<std::uint64_t>(
      static_cast<double>(record.packets) * bytes_per_packet);
  record.timestamp = now_;
  return record;
}

std::vector<flow::FlowRecord> FlowGenerator::generate(std::size_t n) {
  std::vector<flow::FlowRecord> records;
  records.reserve(n);
  for (std::size_t i = 0; i < n; ++i) records.push_back(next());
  return records;
}

std::vector<flow::FlowRecord> FlowGenerator::generate_for(SimDuration window) {
  expects(window > 0, "FlowGenerator::generate_for: window must be positive");
  const SimTime end = now_ + window;
  std::vector<flow::FlowRecord> records;
  while (true) {
    flow::FlowRecord record = next();
    if (record.timestamp >= end) {
      now_ = end;  // do not leak time past the window
      break;
    }
    records.push_back(std::move(record));
  }
  return records;
}

}  // namespace megads::trace
