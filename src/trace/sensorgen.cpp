#include "trace/sensorgen.hpp"

#include "common/error.hpp"

namespace megads::trace {

namespace {

flow::IPv4 sensor_address(std::uint16_t line, std::uint16_t machine,
                          std::uint16_t sensor) {
  return flow::IPv4(10, static_cast<std::uint8_t>(line),
                    static_cast<std::uint8_t>(machine),
                    static_cast<std::uint8_t>(sensor));
}

}  // namespace

primitives::StreamItem SensorReading::to_item() const {
  primitives::StreamItem item;
  item.key.with_src(flow::Prefix(sensor_address(line, machine, sensor), 32));
  item.value = value;
  item.timestamp = timestamp;
  return item;
}

flow::Prefix SensorReading::address() const {
  return flow::Prefix(sensor_address(line, machine, sensor), 32);
}

flow::Prefix machine_prefix(std::uint16_t line, std::uint16_t machine) {
  return flow::Prefix(sensor_address(line, machine, 0), 24);
}

flow::Prefix line_prefix(std::uint16_t line) {
  return flow::Prefix(sensor_address(line, 0, 0), 16);
}

flow::Prefix factory_prefix() { return flow::Prefix(flow::IPv4(10, 0, 0, 0), 8); }

SensorGenerator::SensorGenerator(SensorGenConfig config)
    : config_(std::move(config)), rng_(config_.seed) {
  expects(config_.sample_period > 0, "SensorGenerator: sample_period must be positive");
  expects(config_.lines > 0 && config_.lines <= 256 &&
              config_.machines_per_line > 0 && config_.machines_per_line <= 256 &&
              config_.sensors_per_machine > 0 && config_.sensors_per_machine <= 256,
          "SensorGenerator: factory dimensions must fit the 10.x.y.z encoding");
  expects(config_.ar_phi >= 0.0 && config_.ar_phi < 1.0,
          "SensorGenerator: ar_phi must be in [0, 1)");

  for (std::uint16_t line = 0; line < config_.lines; ++line) {
    for (std::uint16_t machine = 0; machine < config_.machines_per_line; ++machine) {
      const bool degrading = rng_.bernoulli(config_.degrading_fraction);
      for (std::uint16_t sensor = 0; sensor < config_.sensors_per_machine; ++sensor) {
        SensorState s;
        s.line = line;
        s.machine = machine;
        s.sensor = sensor;
        s.base = rng_.normal(config_.base_level, config_.base_level * 0.1);
        s.degrading = degrading;
        state_.push_back(s);
      }
    }
  }
}

bool SensorGenerator::is_degrading(std::uint16_t line, std::uint16_t machine) const {
  for (const SensorState& s : state_) {
    if (s.line == line && s.machine == machine) return s.degrading;
  }
  return false;
}

std::vector<SensorReading> SensorGenerator::tick() {
  now_ += config_.sample_period;
  const double hours = to_seconds(now_) / 3600.0;

  std::vector<SensorReading> readings;
  readings.reserve(state_.size());
  for (SensorState& s : state_) {
    s.deviation = config_.ar_phi * s.deviation +
                  rng_.normal(0.0, config_.noise_sigma);
    double value = s.base + s.deviation;
    if (s.degrading) value += config_.drift_per_hour * hours;
    for (const FaultSpec& fault : config_.faults) {
      if (fault.line == s.line && fault.machine == s.machine &&
          now_ >= fault.start && now_ < fault.start + fault.duration) {
        value += fault.magnitude;
      }
    }
    SensorReading reading;
    reading.line = s.line;
    reading.machine = s.machine;
    reading.sensor = s.sensor;
    reading.value = value;
    reading.timestamp = now_;
    readings.push_back(reading);
  }
  return readings;
}

std::vector<SensorReading> SensorGenerator::generate_until(SimTime until) {
  std::vector<SensorReading> all;
  while (now_ + config_.sample_period <= until) {
    auto batch = tick();
    all.insert(all.end(), batch.begin(), batch.end());
  }
  return all;
}

}  // namespace megads::trace
