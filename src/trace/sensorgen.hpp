// Synthetic smart-factory sensor streams (substitute for machine sensors and
// camera feeds).
//
// A factory is lines x machines x sensors. Each sensor is an AR(1) process
// around a base level; "degrading" machines add slow drift (the predictive-
// maintenance signal) and injected faults add step anomalies (the trigger /
// control-loop signal).
//
// Readings map onto the flow domain so that every computing primitive can
// consume them: sensor identity is encoded as the address 10.line.machine.sensor,
// which makes the factory hierarchy (machine = /24, line = /16, factory = /8)
// a prefix hierarchy — the paper's "domain knowledge" property carried over
// to the second use case.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "primitives/item.hpp"

namespace megads::trace {

struct SensorReading {
  std::uint16_t line = 0;
  std::uint16_t machine = 0;   ///< machine index within the line
  std::uint16_t sensor = 0;    ///< sensor index within the machine
  double value = 0.0;
  SimTime timestamp = 0;

  /// Flow-domain encoding: key 10.line.machine.sensor, value = reading.
  [[nodiscard]] primitives::StreamItem to_item() const;
  /// The address of this reading's sensor (10.line.machine.sensor/32).
  [[nodiscard]] flow::Prefix address() const;
};

/// Prefix helpers for factory scopes.
[[nodiscard]] flow::Prefix machine_prefix(std::uint16_t line, std::uint16_t machine);
[[nodiscard]] flow::Prefix line_prefix(std::uint16_t line);
[[nodiscard]] flow::Prefix factory_prefix();

struct FaultSpec {
  std::uint16_t line = 0;
  std::uint16_t machine = 0;
  SimTime start = 0;
  SimDuration duration = 0;
  double magnitude = 0.0;  ///< added to every reading of the machine
};

struct SensorGenConfig {
  std::uint64_t seed = 7;
  std::uint16_t lines = 2;
  std::uint16_t machines_per_line = 4;
  std::uint16_t sensors_per_machine = 8;
  SimDuration sample_period = 100 * kMillisecond;
  double base_level = 50.0;     ///< per-sensor base drawn near this level
  double ar_phi = 0.9;          ///< AR(1) persistence
  double noise_sigma = 1.0;
  /// Fraction of machines whose sensors drift upward (degradation).
  double degrading_fraction = 0.25;
  double drift_per_hour = 5.0;
  std::vector<FaultSpec> faults;
};

class SensorGenerator {
 public:
  explicit SensorGenerator(SensorGenConfig config);

  /// All sensor readings for the next sample tick (one per sensor).
  std::vector<SensorReading> tick();

  /// Run ticks until `until`, concatenating the readings.
  std::vector<SensorReading> generate_until(SimTime until);

  [[nodiscard]] SimTime now() const noexcept { return now_; }
  [[nodiscard]] std::size_t sensor_count() const noexcept { return state_.size(); }
  [[nodiscard]] const SensorGenConfig& config() const noexcept { return config_; }
  /// True when the machine was configured to degrade over time.
  [[nodiscard]] bool is_degrading(std::uint16_t line, std::uint16_t machine) const;

 private:
  struct SensorState {
    std::uint16_t line;
    std::uint16_t machine;
    std::uint16_t sensor;
    double base;
    double deviation = 0.0;  ///< AR(1) state around the base
    bool degrading = false;
  };

  SensorGenConfig config_;
  Rng rng_;
  std::vector<SensorState> state_;
  SimTime now_ = 0;
};

}  // namespace megads::trace
