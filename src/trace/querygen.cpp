#include "trace/querygen.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace megads::trace {

QueryTrace generate_query_trace(const QueryGenConfig& config) {
  expects(config.partitions > 0, "generate_query_trace: need at least one partition");
  expects(config.horizon > 0 && config.mean_gap > 0,
          "generate_query_trace: horizon and mean_gap must be positive");

  Rng rng(config.seed);
  QueryTrace trace;
  trace.accesses_per_partition.assign(config.partitions, 0);
  trace.bytes_per_partition.assign(config.partitions, 0);

  for (std::size_t p = 0; p < config.partitions; ++p) {
    const SimTime born = static_cast<SimTime>(
        rng.uniform(static_cast<std::uint64_t>(config.spawn_window) + 1));

    // Draw this partition's popularity: a Pareto mean, realized through a
    // geometric count so short-lived partitions dominate but a heavy tail
    // of hot partitions exists.
    const double mean = rng.pareto(config.min_accesses, config.access_alpha);
    const double p_stop = 1.0 / (1.0 + mean);
    std::uint64_t count = rng.geometric(p_stop);
    count = std::min(count, config.max_accesses);

    SimTime t = born;
    for (std::uint64_t i = 0; i < count; ++i) {
      t += std::max<SimDuration>(
          1, static_cast<SimDuration>(
                 rng.exponential(1.0 / to_seconds(config.mean_gap)) *
                 static_cast<double>(kSecond)));
      if (t >= config.horizon) break;
      AccessEvent event;
      event.partition = PartitionId(static_cast<std::uint32_t>(p));
      event.time = t;
      event.result_bytes = std::min(
          config.result_cap_bytes,
          static_cast<std::uint64_t>(rng.pareto(
              static_cast<double>(config.result_min_bytes), config.result_alpha)));
      trace.accesses_per_partition[p] += 1;
      trace.bytes_per_partition[p] += event.result_bytes;
      trace.events.push_back(event);
    }
  }

  std::sort(trace.events.begin(), trace.events.end(),
            [](const AccessEvent& a, const AccessEvent& b) {
              return a.time < b.time;
            });
  return trace;
}

}  // namespace megads::trace
