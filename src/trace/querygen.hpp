// Synthetic partition-access traces (substitute for the paper's proprietary
// "enterprise-level query trace" used to evaluate adaptive replication,
// Section VII).
//
// Each partition is accessed by remote stores over a finite lifetime. The
// number of accesses per partition is heavy-tailed (Pareto-like, via a
// geometric with partition-specific continuation probability drawn from a
// skewed mixture): most partitions receive a handful of queries, a few
// receive hundreds — exactly the regime where ski-rental style policies pay
// off. Result volumes per access are Pareto.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace megads::trace {

struct AccessEvent {
  PartitionId partition;
  SimTime time = 0;
  std::uint64_t result_bytes = 0;  ///< size of the shipped query result
};

struct QueryGenConfig {
  std::uint64_t seed = 21;
  std::size_t partitions = 200;
  SimDuration horizon = 1 * kDay;
  /// Partition creation times spread uniformly over the first `spawn_window`.
  SimDuration spawn_window = 12 * kHour;
  /// Heavy-tail knobs: accesses per partition ~ mixture of geometrics whose
  /// mean is Pareto(min_accesses, access_alpha), truncated at max_accesses.
  double min_accesses = 1.0;
  double access_alpha = 1.1;
  std::uint64_t max_accesses = 2000;
  /// Mean gap between successive accesses of one partition.
  SimDuration mean_gap = 10 * kMinute;
  /// Result volume per access ~ Pareto(result_min_bytes, result_alpha).
  std::uint64_t result_min_bytes = 64 * 1024;
  double result_alpha = 1.4;
  std::uint64_t result_cap_bytes = 1ull << 30;
};

struct QueryTrace {
  std::vector<AccessEvent> events;  ///< time-sorted
  /// Ground truth: per-partition totals (indexed by partition id value).
  std::vector<std::uint64_t> accesses_per_partition;
  std::vector<std::uint64_t> bytes_per_partition;
};

/// Generates a full access trace up front (the replication experiments replay
/// it against different policies).
[[nodiscard]] QueryTrace generate_query_trace(const QueryGenConfig& config);

}  // namespace megads::trace
