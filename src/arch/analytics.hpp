// Analytics pipelines (Section III): "transfer & process" — scatter-gather
// over data stores, then map / filter / reduce / apply stages, feeding
// applications ("model & learn"). This is the long, adaptive arm of the
// feedback loop (Fig. 3a "Adaptive Cycle"), in contrast to the controller's
// short trigger path.
//
// A pipeline is built fluently and is re-runnable; each run() re-queries the
// sources, so applications can poll it periodically:
//
//   auto result = AnalyticsPipeline("hot-prefixes")
//       .from_store(store_a, slot_a, HHHQuery{0.05})
//       .from_store(store_b, slot_b, HHHQuery{0.05})
//       .filter([](const KeyScore& r) { return r.score > 1e6; })
//       .map([](KeyScore r) { r.score /= kMega; return r; })
//       .run();
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "store/datastore.hpp"

namespace megads::arch {

class AnalyticsPipeline {
 public:
  using KeyScore = primitives::KeyScore;
  using MapFn = std::function<KeyScore(KeyScore)>;
  using FilterFn = std::function<bool(const KeyScore&)>;
  using ReduceFn = std::function<KeyScore(const KeyScore&, const KeyScore&)>;

  explicit AnalyticsPipeline(std::string name);

  /// Scatter stage: add a (store, slot, query) source. All sources are
  /// gathered and combined on run(). `store` must outlive the pipeline.
  AnalyticsPipeline& from_store(const store::DataStore& store, AggregatorId slot,
                                primitives::Query query,
                                std::optional<TimeInterval> interval = std::nullopt);

  /// Row-wise transformation stage.
  AnalyticsPipeline& map(MapFn fn);
  /// Row predicate stage.
  AnalyticsPipeline& filter(FilterFn fn);
  /// Fold all rows into one (applied after maps/filters, if set).
  AnalyticsPipeline& reduce(ReduceFn fn);
  /// Terminal side-effect invoked with the final rows on every run.
  AnalyticsPipeline& apply(std::function<void(const std::vector<KeyScore>&)> fn);

  /// Gather + process. Returns the final rows (a single row under reduce).
  std::vector<KeyScore> run();

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::size_t source_count() const noexcept { return sources_.size(); }
  [[nodiscard]] std::uint64_t runs() const noexcept { return runs_; }

 private:
  struct Source {
    const store::DataStore* store;
    AggregatorId slot;
    primitives::Query query;
    std::optional<TimeInterval> interval;
  };
  struct Stage {
    enum class Kind { kMap, kFilter } kind;
    MapFn map;
    FilterFn filter;
  };

  std::string name_;
  std::vector<Source> sources_;
  std::vector<Stage> stages_;
  std::optional<ReduceFn> reduce_;
  std::vector<std::function<void(const std::vector<KeyScore>&)>> sinks_;
  std::uint64_t runs_ = 0;
};

}  // namespace megads::arch
