#include "arch/controller.hpp"

#include <algorithm>
#include <limits>

namespace megads::arch {

Controller::Controller(std::string name) : name_(std::move(name)) {}

void Controller::attach_actuator(const std::string& actuator, Actuator callback) {
  expects(static_cast<bool>(callback), "Controller::attach_actuator: empty callback");
  actuators_[actuator] = std::move(callback);
}

RuleId Controller::install_rule(Rule rule) {
  expects(rule.min_value <= rule.max_value,
          "Controller::install_rule: min_value must be <= max_value");
  if (rule.on_trigger_value &&
      (*rule.on_trigger_value < rule.min_value ||
       *rule.on_trigger_value > rule.max_value)) {
    throw RuleConflictError("rule '" + rule.name +
                            "' trigger setpoint lies outside its own safe range");
  }
  for (const auto& [id, existing] : rules_) {
    if (existing.actuator != rule.actuator) continue;
    if (!existing.overlaps_scope(rule)) continue;
    const double lo = std::max(existing.min_value, rule.min_value);
    const double hi = std::min(existing.max_value, rule.max_value);
    if (lo > hi) {
      throw RuleConflictError(
          "rule '" + rule.name + "' conflicts with installed rule '" +
          existing.name + "' on actuator '" + rule.actuator +
          "': safe ranges are disjoint");
    }
  }
  const RuleId id(next_rule_++);
  rules_.emplace(id, std::move(rule));
  return id;
}

void Controller::remove_rule(RuleId rule) {
  if (rules_.erase(rule) == 0) {
    throw NotFoundError("Controller::remove_rule: unknown rule");
  }
}

std::optional<double> Controller::validate(const std::string& actuator,
                                           const flow::FlowKey& scope,
                                           double value) const {
  bool governed = false;
  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();
  for (const auto& [id, rule] : rules_) {
    if (rule.actuator != actuator) continue;
    if (!rule.scope.generalizes(scope) && !scope.generalizes(rule.scope)) continue;
    governed = true;
    lo = std::max(lo, rule.min_value);
    hi = std::min(hi, rule.max_value);
  }
  if (!governed) return std::nullopt;
  return std::clamp(value, lo, hi);
}

void Controller::issue(ActuationCommand command) {
  const auto it = actuators_.find(command.actuator);
  if (it != actuators_.end()) it->second(command);
  log_.push_back(std::move(command));
}

void Controller::on_trigger(const store::TriggerEvent& event) {
  ++triggers_handled_;
  for (const auto& [id, rule] : rules_) {
    if (!rule.on_trigger_value) continue;
    if (!rule.scope.generalizes(event.key)) continue;
    ActuationCommand command;
    command.actuator = rule.actuator;
    command.requested = *rule.on_trigger_value;
    command.value = validate(rule.actuator, event.key, command.requested)
                        .value_or(command.requested);
    command.time = event.time;
    command.reason = "trigger '" + event.name + "' via rule '" + rule.name + "'";
    issue(std::move(command));
  }
}

ActuationCommand Controller::actuate(const std::string& actuator,
                                     const flow::FlowKey& scope, double value,
                                     SimTime now, std::string reason) {
  ActuationCommand command;
  command.actuator = actuator;
  command.requested = value;
  command.value = validate(actuator, scope, value).value_or(value);
  command.time = now;
  command.reason = std::move(reason);
  issue(command);
  return command;
}

}  // namespace megads::arch
