// The Controller (Section III): local control logic that regulates machines
// without waiting for applications. Applications install rules; the
// controller checks them for conflicts before accepting them, validates
// actuation commands against the rules' safe ranges ("avoid raising a robot
// arm beyond its highest point"), and reacts to data-store triggers in the
// short control cycle of Fig. 3a.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "flow/flowkey.hpp"
#include "store/trigger.hpp"

namespace megads::arch {

/// A command the controller issues to an actuator.
struct ActuationCommand {
  std::string actuator;     ///< e.g. "line0.machine3.speed"
  double value = 0.0;       ///< validated (possibly clamped) setpoint
  double requested = 0.0;   ///< value before validation
  SimTime time = 0;
  std::string reason;       ///< rule or trigger that caused the command
};

/// A rule an application installs: within `scope`, actuator `actuator` must
/// stay inside [min_value, max_value]; when a trigger in scope fires, drive
/// the actuator to `on_trigger_value`.
struct Rule {
  std::string name;
  AppId owner;
  std::string actuator;
  flow::FlowKey scope;       ///< machines/flows the rule governs
  double min_value = 0.0;
  double max_value = 0.0;
  std::optional<double> on_trigger_value;  ///< setpoint when a trigger matches

  [[nodiscard]] bool overlaps_scope(const Rule& other) const noexcept {
    return scope.generalizes(other.scope) || other.scope.generalizes(scope);
  }
};

/// Thrown when a rule contradicts an installed one ("conflicts between rules
/// are resolved locally at the controller").
class RuleConflictError : public Error {
 public:
  explicit RuleConflictError(const std::string& what) : Error(what) {}
};

class Controller {
 public:
  using Actuator = std::function<void(const ActuationCommand&)>;

  explicit Controller(std::string name = "controller");

  /// Register the physical actuation callback for an actuator name.
  void attach_actuator(const std::string& actuator, Actuator callback);

  /// Install a rule after conflict checking. Two rules conflict when they
  /// govern the same actuator on overlapping scopes with disjoint safe
  /// ranges. Throws RuleConflictError; otherwise returns the rule id.
  RuleId install_rule(Rule rule);
  void remove_rule(RuleId rule);
  [[nodiscard]] std::size_t rule_count() const noexcept { return rules_.size(); }

  /// Validate a requested setpoint: clamp it into the intersection of all
  /// matching rules' safe ranges. Returns nullopt when no rule governs the
  /// actuator+scope (nothing is known to be safe).
  [[nodiscard]] std::optional<double> validate(const std::string& actuator,
                                               const flow::FlowKey& scope,
                                               double value) const;

  /// Trigger entry point (wire as the TriggerSpec action of a data store):
  /// fires every matching rule's on_trigger_value through its actuator.
  void on_trigger(const store::TriggerEvent& event);

  /// Drive an actuator directly (an application's "contact the controller"
  /// path); the value is validated first. Returns the issued command.
  ActuationCommand actuate(const std::string& actuator, const flow::FlowKey& scope,
                           double value, SimTime now, std::string reason);

  [[nodiscard]] const std::vector<ActuationCommand>& log() const noexcept {
    return log_;
  }
  [[nodiscard]] std::uint64_t triggers_handled() const noexcept {
    return triggers_handled_;
  }

 private:
  void issue(ActuationCommand command);

  std::string name_;
  std::unordered_map<RuleId, Rule> rules_;
  std::unordered_map<std::string, Actuator> actuators_;
  std::vector<ActuationCommand> log_;
  std::uint64_t triggers_handled_ = 0;
  std::uint32_t next_rule_ = 0;
};

}  // namespace megads::arch
