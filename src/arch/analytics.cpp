#include "arch/analytics.hpp"

#include <utility>

#include "common/error.hpp"

namespace megads::arch {

AnalyticsPipeline::AnalyticsPipeline(std::string name) : name_(std::move(name)) {}

AnalyticsPipeline& AnalyticsPipeline::from_store(
    const store::DataStore& store, AggregatorId slot, primitives::Query query,
    std::optional<TimeInterval> interval) {
  sources_.push_back(Source{&store, slot, std::move(query), interval});
  return *this;
}

AnalyticsPipeline& AnalyticsPipeline::map(MapFn fn) {
  expects(static_cast<bool>(fn), "AnalyticsPipeline::map: empty function");
  Stage stage;
  stage.kind = Stage::Kind::kMap;
  stage.map = std::move(fn);
  stages_.push_back(std::move(stage));
  return *this;
}

AnalyticsPipeline& AnalyticsPipeline::filter(FilterFn fn) {
  expects(static_cast<bool>(fn), "AnalyticsPipeline::filter: empty function");
  Stage stage;
  stage.kind = Stage::Kind::kFilter;
  stage.filter = std::move(fn);
  stages_.push_back(std::move(stage));
  return *this;
}

AnalyticsPipeline& AnalyticsPipeline::reduce(ReduceFn fn) {
  expects(static_cast<bool>(fn), "AnalyticsPipeline::reduce: empty function");
  reduce_ = std::move(fn);
  return *this;
}

AnalyticsPipeline& AnalyticsPipeline::apply(
    std::function<void(const std::vector<KeyScore>&)> fn) {
  expects(static_cast<bool>(fn), "AnalyticsPipeline::apply: empty function");
  sinks_.push_back(std::move(fn));
  return *this;
}

std::vector<AnalyticsPipeline::KeyScore> AnalyticsPipeline::run() {
  expects(!sources_.empty(), "AnalyticsPipeline::run: no sources configured");
  ++runs_;

  // Scatter & gather: query every source, then combine like a distributed
  // sub-query fan-in.
  std::vector<primitives::QueryResult> parts;
  parts.reserve(sources_.size());
  for (const Source& source : sources_) {
    parts.push_back(source.store->query(source.slot, source.query, source.interval));
  }
  primitives::QueryResult gathered =
      store::DataStore::combine_results(std::move(parts), sources_.front().query);

  std::vector<KeyScore> rows = std::move(gathered.entries);

  for (const Stage& stage : stages_) {
    if (stage.kind == Stage::Kind::kMap) {
      for (KeyScore& row : rows) row = stage.map(std::move(row));
    } else {
      std::erase_if(rows, [&](const KeyScore& row) { return !stage.filter(row); });
    }
  }

  if (reduce_ && !rows.empty()) {
    KeyScore folded = rows.front();
    for (std::size_t i = 1; i < rows.size(); ++i) folded = (*reduce_)(folded, rows[i]);
    rows = {std::move(folded)};
  }

  for (const auto& sink : sinks_) sink(rows);
  return rows;
}

}  // namespace megads::arch
