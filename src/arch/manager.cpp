#include "arch/manager.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "flowtree/flowtree.hpp"
#include "primitives/countmin.hpp"
#include "primitives/exact.hpp"
#include "primitives/histogram.hpp"
#include "primitives/sampling.hpp"
#include "primitives/spacesaving.hpp"
#include "primitives/timebin.hpp"

namespace megads::arch {

const char* to_string(SummaryFormat format) noexcept {
  switch (format) {
    case SummaryFormat::kRaw: return "raw";
    case SummaryFormat::kSample: return "sample";
    case SummaryFormat::kTimeBins: return "time-bins";
    case SummaryFormat::kHistogram: return "histogram";
    case SummaryFormat::kHeavyHitters: return "heavy-hitters";
    case SummaryFormat::kSketch: return "sketch";
    case SummaryFormat::kFlowtree: return "flowtree";
    case SummaryFormat::kExact: return "exact";
  }
  return "?";
}

Manager::Manager(std::string name) : name_(std::move(name)) {}

store::AggregatorFactory Manager::make_factory(SummaryFormat format,
                                               std::size_t precision) {
  expects(precision > 0, "Manager::make_factory: precision must be positive");
  switch (format) {
    case SummaryFormat::kRaw:
      return [] { return std::make_unique<primitives::RawStore>(); };
    case SummaryFormat::kSample:
      return [precision] {
        return std::make_unique<primitives::SamplingAggregator>(precision);
      };
    case SummaryFormat::kTimeBins:
      // Interpret precision as the target bin count per epoch; the store's
      // adapt() path coarsens bins when the count exceeds it.
      return [] {
        return std::make_unique<primitives::TimeBinAggregator>(kSecond);
      };
    case SummaryFormat::kHistogram:
      // Unit-width buckets; the store's adapt() path coarsens to the entry
      // budget when the value range is wide.
      return [] { return std::make_unique<primitives::HistogramAggregator>(1.0); };
    case SummaryFormat::kHeavyHitters:
      return [precision] {
        return std::make_unique<primitives::SpaceSaving>(precision);
      };
    case SummaryFormat::kSketch:
      return [precision] {
        return std::make_unique<primitives::CountMinSketch>(precision, 4, true);
      };
    case SummaryFormat::kFlowtree:
      return [precision] {
        flowtree::FlowtreeConfig config;
        config.node_budget = std::max<std::size_t>(2, precision);
        return std::make_unique<flowtree::Flowtree>(config);
      };
    case SummaryFormat::kExact:
      return [] { return std::make_unique<primitives::ExactAggregator>(); };
  }
  throw Error("Manager::make_factory: unknown format");
}

std::unique_ptr<store::StorageStrategy> Manager::make_storage(StorageClass storage,
                                                              std::uint64_t budget) {
  switch (storage) {
    case StorageClass::kExpiration:
      return std::make_unique<store::ExpirationStorage>(
          static_cast<SimDuration>(budget));
    case StorageClass::kRoundRobin:
      return std::make_unique<store::RoundRobinStorage>(
          static_cast<std::size_t>(budget));
    case StorageClass::kHierarchical:
      return std::make_unique<store::HierarchicalStorage>(
          store::HierarchicalStorage::Config{});
  }
  throw Error("Manager::make_storage: unknown storage class");
}

AggregatorId Manager::provision(store::DataStore& store,
                                const AppRequirements& requirements) {
  expects(requirements.app.valid(), "Manager::provision: requirements need an app id");
  const SlotKey key{store.id(), requirements.format, requirements.epoch,
                    requirements.storage};

  const auto it = slots_.find(key);
  if (it != slots_.end() && it->second.precision >= requirements.precision) {
    // Compatible slot exists: share it, extend subscriptions.
    for (const SensorId sensor : requirements.sensors) {
      store.subscribe(sensor, it->second.slot);
    }
    if (std::find(it->second.users.begin(), it->second.users.end(),
                  requirements.app) == it->second.users.end()) {
      it->second.users.push_back(requirements.app);
    }
    return it->second.slot;
  }

  store::SlotConfig config;
  config.name = std::string(to_string(requirements.format)) + "/" +
                std::to_string(requirements.precision) + "@" +
                std::to_string(requirements.epoch / kSecond) + "s";
  config.factory = make_factory(requirements.format, requirements.precision);
  config.epoch = requirements.epoch;
  config.storage = make_storage(requirements.storage, requirements.storage_budget);
  config.live_budget = requirements.precision;
  config.subscribe_all = requirements.sensors.empty();
  const AggregatorId slot = store.install(std::move(config));
  for (const SensorId sensor : requirements.sensors) store.subscribe(sensor, slot);

  if (it != slots_.end()) {
    // A finer precision was requested: the new slot supersedes the old key
    // entry for future sharing, but existing users keep their old slot.
    slots_.erase(it);
  }
  slots_.emplace(key, ProvisionedSlot{slot, requirements.precision,
                                      {requirements.app}});
  if (std::find(stores_.begin(), stores_.end(), &store) == stores_.end()) {
    stores_.push_back(&store);
  }
  return slot;
}

void Manager::release(store::DataStore& store, AppId app) {
  for (auto it = slots_.begin(); it != slots_.end();) {
    if (it->first.store != store.id()) {
      ++it;
      continue;
    }
    auto& users = it->second.users;
    users.erase(std::remove(users.begin(), users.end(), app), users.end());
    if (users.empty()) {
      store.remove(it->second.slot);
      it = slots_.erase(it);
    } else {
      ++it;
    }
  }
}

std::size_t Manager::enforce_memory_budget(store::DataStore& store,
                                           std::size_t max_bytes) {
  expects(max_bytes > 0, "Manager::enforce_memory_budget: budget must be positive");
  std::size_t reductions = 0;
  while (store.memory_bytes() > max_bytes) {
    // Pick the provisioned slot with the biggest live summary.
    ProvisionedSlot* victim = nullptr;
    std::size_t victim_bytes = 0;
    for (auto& [key, slot] : slots_) {
      if (key.store != store.id()) continue;
      const std::size_t bytes = store.live(slot.slot).memory_bytes();
      if (bytes > victim_bytes && slot.precision > 16) {
        victim = &slot;
        victim_bytes = bytes;
      }
    }
    if (victim == nullptr) break;  // nothing left to shrink
    victim->precision = std::max<std::size_t>(16, victim->precision / 2);
    store.set_live_budget(victim->slot, victim->precision);
    ++reductions;
  }
  return reductions;
}

std::vector<Manager::StoreReport> Manager::report() const {
  std::vector<StoreReport> reports;
  for (const store::DataStore* store : stores_) {
    StoreReport report;
    report.store = store->id();
    report.name = store->name();
    report.slots = store->slots().size();
    for (const AggregatorId slot : store->slots()) {
      report.partitions += store->partitions(slot).size();
    }
    report.memory_bytes = store->memory_bytes();
    reports.push_back(std::move(report));
  }
  return reports;
}

std::size_t Manager::provisioned_slots() const noexcept { return slots_.size(); }

}  // namespace megads::arch
