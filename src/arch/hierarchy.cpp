#include "arch/hierarchy.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace megads::arch {

Hierarchy::Hierarchy(sim::Simulator& sim, std::vector<LevelSpec> levels)
    : sim_(&sim),
      levels_(std::move(levels)),
      network_(sim, topology_),
      transport_(network_) {
  expects(!levels_.empty(), "Hierarchy: need at least one level");

  // Node counts, root (1) downward.
  std::vector<std::size_t> counts(levels_.size(), 1);
  for (std::size_t level = levels_.size() - 1; level-- > 0;) {
    expects(levels_[level].fanout > 0, "Hierarchy: fanout must be positive");
    counts[level] = counts[level + 1] * levels_[level].fanout;
  }

  std::uint32_t next_store = 0;
  nodes_.resize(levels_.size());
  for (std::size_t level = levels_.size(); level-- > 0;) {
    const LevelSpec& spec = levels_[level];
    nodes_[level].reserve(counts[level]);
    for (std::size_t index = 0; index < counts[level]; ++index) {
      Node node;
      const std::string name =
          spec.name + "-" + std::to_string(index);
      node.store = std::make_unique<store::DataStore>(StoreId(next_store++), name);
      node.net_node = topology_.add_node(name, static_cast<int>(level));

      store::SlotConfig slot_config;
      slot_config.name = spec.name + "/summary";
      slot_config.factory = Manager::make_factory(spec.format, spec.budget);
      slot_config.epoch = spec.epoch;
      slot_config.storage = Manager::make_storage(spec.storage, spec.storage_budget);
      slot_config.live_budget = spec.budget;
      slot_config.subscribe_all = true;
      node.slot = node.store->install(std::move(slot_config));

      if (level + 1 < levels_.size()) {
        node.parent_index = index / levels_[level].fanout;
        const Node& parent = nodes_[level + 1][node.parent_index];
        node.uplink = topology_.add_link(node.net_node, parent.net_node,
                                         spec.uplink_latency, spec.uplink_bps);
      }
      nodes_[level].push_back(std::move(node));
    }
  }
}

std::size_t Hierarchy::nodes_at(std::size_t level) const {
  expects(level < nodes_.size(), "Hierarchy::nodes_at: bad level");
  return nodes_[level].size();
}

const LevelSpec& Hierarchy::level(std::size_t level) const {
  expects(level < levels_.size(), "Hierarchy::level: bad level");
  return levels_[level];
}

Hierarchy::Node& Hierarchy::node_at(std::size_t level, std::size_t index) {
  expects(level < nodes_.size() && index < nodes_[level].size(),
          "Hierarchy: bad node coordinates");
  return nodes_[level][index];
}

const Hierarchy::Node& Hierarchy::node_at(std::size_t level,
                                          std::size_t index) const {
  expects(level < nodes_.size() && index < nodes_[level].size(),
          "Hierarchy: bad node coordinates");
  return nodes_[level][index];
}

store::DataStore& Hierarchy::store(std::size_t level, std::size_t index) {
  return *node_at(level, index).store;
}

const store::DataStore& Hierarchy::store(std::size_t level,
                                         std::size_t index) const {
  return *node_at(level, index).store;
}

AggregatorId Hierarchy::slot(std::size_t level, std::size_t index) const {
  return node_at(level, index).slot;
}

void Hierarchy::ingest(std::size_t leaf_index, SensorId sensor,
                       const primitives::StreamItem& item) {
  Node& leaf = node_at(0, leaf_index);
  raw_bytes_ += kRawItemBytes;
  leaf.store->ingest(sensor, item);
}

void Hierarchy::ingest_batch(std::size_t leaf_index, SensorId sensor,
                             std::span<const primitives::StreamItem> items) {
  Node& leaf = node_at(0, leaf_index);
  raw_bytes_ += kRawItemBytes * items.size();
  leaf.store->ingest_batch(sensor, items);
}

void Hierarchy::attach_metrics(metrics::MetricsRegistry& registry) {
  for (auto& level : nodes_) {
    for (auto& node : level) node.store->attach_metrics(registry);
  }
  transport_.attach_metrics(registry);
}

void Hierarchy::set_parallelism(ThreadPool& pool, std::size_t shards) {
  for (auto& level : nodes_) {
    for (auto& node : level) node.store->set_parallelism(pool, shards);
  }
}

void Hierarchy::export_tick(std::size_t level, std::size_t index, SimTime now) {
  Node& node = node_at(level, index);
  node.store->advance_to(now);
  const TimeInterval window{node.last_export, now};
  if (window.empty()) return;
  // Defer exports across failed uplinks; the next tick retries with a window
  // covering everything missed (Table I challenge 4).
  if (!topology_.link_up(node.uplink)) return;
  node.last_export = now;

  // Export the freshly sealed epoch's summary upward.
  std::shared_ptr<primitives::Aggregator> summary =
      node.store->snapshot(node.slot, window);
  if (summary->items_ingested() == 0 && summary->size() <= 1) return;

  Node& parent = nodes_[level + 1][node.parent_index];
  store::DataStore* parent_store = parent.store.get();
  const AggregatorId parent_slot = parent.slot;
  transport_.send(node.net_node, parent.net_node, summary->wire_bytes(),
                  [parent_store, parent_slot, summary](SimTime delivered) {
                    parent_store->advance_to(
                        std::max(parent_store->now(), delivered));
                    parent_store->absorb(parent_slot, *summary);
                  });
}

void Hierarchy::start() {
  expects(!started_, "Hierarchy::start: already started");
  started_ = true;
  for (std::size_t level = 0; level + 1 < levels_.size(); ++level) {
    for (std::size_t index = 0; index < nodes_[level].size(); ++index) {
      sim_->schedule_periodic(levels_[level].epoch,
                              [this, level, index](SimTime now) {
                                export_tick(level, index, now);
                              });
    }
  }
  // The root still needs its clock advanced to seal epochs.
  if (!levels_.empty()) {
    sim_->schedule_periodic(levels_.back().epoch, [this](SimTime now) {
      nodes_.back().front().store->advance_to(now);
    });
  }
}

net::LinkId Hierarchy::uplink(std::size_t level, std::size_t index) const {
  expects(level + 1 < nodes_.size(), "Hierarchy::uplink: the root has no uplink");
  return node_at(level, index).uplink;
}

std::uint64_t Hierarchy::uplink_bytes(std::size_t level) const {
  expects(level < nodes_.size(), "Hierarchy::uplink_bytes: bad level");
  if (level + 1 >= nodes_.size()) return 0;
  std::uint64_t total = 0;
  for (const Node& node : nodes_[level]) {
    total += network_.link_stats(node.uplink).payload_bytes;
  }
  return total;
}

}  // namespace megads::arch
