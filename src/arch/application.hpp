// Applications (Section III): "each application embodies the decision logic
// for a single purpose". The base class wires an application into the
// adaptive cycle of Fig. 3a — a periodic poll driven by the simulator — and
// two concrete applications realize the paper's running examples:
//
//   * PredictiveMaintenanceApp (smart factory): watches per-machine sensor
//     statistics, fits a drift trend, predicts when a machine will cross its
//     failure threshold, and schedules maintenance / slows the machine down
//     through the controller.
//   * TrafficMonitorApp (network monitoring): runs an HHH analytics pipeline
//     over flow summaries from several stores, detects newly emerging heavy
//     prefixes (DDoS-style incidents), and installs rate-limit actuations.
#pragma once

#include <string>
#include <unordered_set>
#include <vector>

#include "arch/analytics.hpp"
#include "arch/controller.hpp"
#include "sim/simulator.hpp"
#include "store/datastore.hpp"

namespace megads::arch {

class Application {
 public:
  Application(AppId id, std::string name);
  virtual ~Application() = default;

  Application(const Application&) = delete;
  Application& operator=(const Application&) = delete;

  [[nodiscard]] AppId id() const noexcept { return id_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// One adaptive-cycle iteration: gather via analytics, decide, act.
  virtual void poll(SimTime now) = 0;

  /// Register the poll loop on the simulator.
  void start(sim::Simulator& sim, SimDuration period);
  void stop(sim::Simulator& sim);

  [[nodiscard]] std::uint64_t polls() const noexcept { return polls_; }

 protected:
  void count_poll() noexcept { ++polls_; }

 private:
  AppId id_;
  std::string name_;
  std::uint64_t polls_ = 0;
  sim::EventHandle loop_{};
};

/// A maintenance decision produced by the predictive-maintenance logic.
struct MaintenanceOrder {
  flow::Prefix machine;
  SimTime issued = 0;
  SimTime predicted_failure = 0;
  double slope_per_hour = 0.0;  ///< estimated drift of the machine's mean
};

class PredictiveMaintenanceApp final : public Application {
 public:
  struct MachineFeed {
    flow::Prefix machine;     ///< 10.line.machine.0/24
    AggregatorId slot;        ///< per-machine time-bin slot
  };
  struct Config {
    SimDuration trend_window = 10 * kMinute;  ///< per-half-window width
    double failure_level = 80.0;     ///< mean level considered failing
    SimDuration horizon = 12 * kHour;///< act when failure predicted within this
    std::string actuator_suffix = ".speed";
    double slowdown_setpoint = 0.5;  ///< issued to the controller on a hit
  };

  PredictiveMaintenanceApp(AppId id, const store::DataStore& store,
                           std::vector<MachineFeed> feeds, Controller& controller,
                           Config config);

  void poll(SimTime now) override;

  [[nodiscard]] const std::vector<MaintenanceOrder>& orders() const noexcept {
    return orders_;
  }

 private:
  const store::DataStore* store_;
  std::vector<MachineFeed> feeds_;
  Controller* controller_;
  Config config_;
  std::vector<MaintenanceOrder> orders_;
  std::unordered_set<std::uint32_t> ordered_;  ///< machines already scheduled
};

/// A detected traffic incident (new heavy hitter).
struct TrafficIncident {
  flow::FlowKey key;
  double score = 0.0;
  SimTime detected = 0;
};

class TrafficMonitorApp final : public Application {
 public:
  struct FlowSource {
    const store::DataStore* store;
    AggregatorId slot;
  };
  struct Config {
    double phi = 0.05;               ///< HHH threshold per poll
    double incident_score = 0.0;     ///< extra absolute score floor
    SimDuration lookback = 5 * kMinute;
    std::string actuator = "rate-limit";
    double limit_setpoint = 0.1;     ///< issued to the controller per incident
  };

  TrafficMonitorApp(AppId id, std::vector<FlowSource> sources,
                    Controller& controller, Config config);

  void poll(SimTime now) override;

  [[nodiscard]] const std::vector<TrafficIncident>& incidents() const noexcept {
    return incidents_;
  }

 private:
  std::vector<FlowSource> sources_;
  Controller* controller_;
  Config config_;
  std::vector<TrafficIncident> incidents_;
  std::unordered_set<flow::FlowKey> known_heavy_;
};

}  // namespace megads::arch
