// The hierarchy of data stores (Section III "Hierarchy", Fig. 1 / Fig. 2b):
// machine -> production line -> factory -> cloud (or router -> region ->
// network -> cloud). Every node runs a DataStore with one summary slot;
// periodically each store exports the summary of its last epoch to its
// parent over the simulated WAN, and the parent absorbs it into its own
// (coarser-epoch, smaller-budget) summary.
//
// Level 0 is the leaf level. Counts are implied by fanout: the root level
// has one node; level i has fanout_i x (nodes at level i+1).
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "arch/manager.hpp"
#include "net/network.hpp"
#include "net/transport.hpp"
#include "sim/simulator.hpp"
#include "store/datastore.hpp"

namespace megads::arch {

struct LevelSpec {
  std::string name;                 ///< "machine", "line", "factory", "cloud"
  std::size_t fanout = 1;           ///< children of each next-level node (root: ignored)
  SimDuration epoch = kSecond;      ///< summary epoch at this level
  std::size_t budget = 1024;        ///< summary entry budget at this level
  SummaryFormat format = SummaryFormat::kFlowtree;
  StorageClass storage = StorageClass::kRoundRobin;
  std::uint64_t storage_budget = 1 << 20;
  SimDuration uplink_latency = 5 * kMillisecond;  ///< link to the parent level
  double uplink_bps = 125.0e6;
};

/// Wire size assumed for one raw observation if it were shipped unaggregated
/// (5-tuple + value + timestamp) — the baseline of experiment E4.
inline constexpr std::uint64_t kRawItemBytes = flow::FlowKey::kWireSize + 16;

class Hierarchy {
 public:
  /// `levels` runs leaf (index 0) to root (last; its fanout is ignored).
  Hierarchy(sim::Simulator& sim, std::vector<LevelSpec> levels);

  [[nodiscard]] std::size_t level_count() const noexcept { return levels_.size(); }
  [[nodiscard]] std::size_t nodes_at(std::size_t level) const;
  [[nodiscard]] const LevelSpec& level(std::size_t level) const;

  [[nodiscard]] store::DataStore& store(std::size_t level, std::size_t index);
  [[nodiscard]] const store::DataStore& store(std::size_t level,
                                              std::size_t index) const;
  /// The single summary slot of a node's store.
  [[nodiscard]] AggregatorId slot(std::size_t level, std::size_t index) const;
  [[nodiscard]] store::DataStore& root() { return store(level_count() - 1, 0); }

  /// Ingest one observation at a leaf (raw bytes are accounted for the
  /// raw-shipping baseline).
  void ingest(std::size_t leaf_index, SensorId sensor,
              const primitives::StreamItem& item);

  /// Batched leaf ingest: one store pass for a whole window of observations.
  void ingest_batch(std::size_t leaf_index, SensorId sensor,
                    std::span<const primitives::StreamItem> items);

  /// Instrument every store (store.<name>.*) and the WAN (net.*) into
  /// `registry`. The registry must outlive the hierarchy.
  void attach_metrics(metrics::MetricsRegistry& registry);

  /// Attach a shard-and-merge execution pool to every node's store: live
  /// summaries shard across `shards` replicas (0 = one per pool thread) and
  /// batch ingest / snapshot folds / compression run on the pool. The
  /// simulator loop stays the single driver; the pool only parallelizes
  /// inside each store call. The pool must outlive the hierarchy.
  void set_parallelism(ThreadPool& pool, std::size_t shards = 0);

  /// Start the periodic export loops (call once, before running the sim).
  void start();

  /// Bytes that crossed the uplinks out of `level` so far.
  [[nodiscard]] std::uint64_t uplink_bytes(std::size_t level) const;
  /// The uplink of one node (for failure-injection experiments).
  [[nodiscard]] net::LinkId uplink(std::size_t level, std::size_t index) const;
  /// Bytes the raw stream would have pushed across level-0 uplinks.
  [[nodiscard]] std::uint64_t raw_bytes_ingested() const noexcept {
    return raw_bytes_;
  }
  [[nodiscard]] const net::Network& network() const noexcept { return network_; }
  [[nodiscard]] net::Topology& topology() noexcept { return topology_; }
  /// The transport every inter-node send goes through (brokers and
  /// coordinators layered on the hierarchy share it).
  [[nodiscard]] net::Transport& transport() noexcept { return transport_; }

 private:
  struct Node {
    std::unique_ptr<store::DataStore> store;
    AggregatorId slot;
    NodeId net_node;
    std::size_t parent_index = 0;       ///< index within the next level
    net::LinkId uplink = 0;
    SimTime last_export = 0;
  };

  void export_tick(std::size_t level, std::size_t index, SimTime now);
  Node& node_at(std::size_t level, std::size_t index);
  [[nodiscard]] const Node& node_at(std::size_t level, std::size_t index) const;

  sim::Simulator* sim_;
  std::vector<LevelSpec> levels_;
  std::vector<std::vector<Node>> nodes_;  ///< [level][index]
  net::Topology topology_;
  net::Network network_;
  net::SimTransport transport_;
  std::uint64_t raw_bytes_ = 0;
  bool started_ = false;
};

}  // namespace megads::arch
