// The Manager (Section III, Fig. 3b): the control plane. It records each
// application's requirements — data source, aggregation format, precision,
// epoch — and uses them to decide (a) which sensors' data is kept, (b) which
// computing primitive is installed, (c) how it is configured and (d) where
// summaries flow. It also tracks the storage and network resources of the
// stores it manages.
//
// Provisioning is idempotent and sharing-aware: two applications whose
// requirements are compatible (same format, epoch, and storage class, and a
// precision no finer than what is installed) share one aggregator slot; the
// slot is removed when its last user releases it.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "store/datastore.hpp"

namespace megads::arch {

/// "Aggregation format" of Fig. 3b, mapped to a concrete primitive.
enum class SummaryFormat {
  kRaw,          ///< keep every observation (RawStore)
  kSample,       ///< uniform sample (SamplingAggregator)
  kTimeBins,     ///< per-bin statistics (TimeBinAggregator)
  kHistogram,    ///< value-distribution buckets (HistogramAggregator)
  kHeavyHitters, ///< Space-Saving top-k summary
  kSketch,       ///< Count-Min sketch
  kFlowtree,     ///< the paper's primitive
  kExact,        ///< exact per-key table (unbounded; tests/ground truth)
};

[[nodiscard]] const char* to_string(SummaryFormat format) noexcept;

enum class StorageClass {
  kExpiration,   ///< strategy 1: fixed TTL
  kRoundRobin,   ///< strategy 2: fixed byte budget
  kHierarchical, ///< strategy 3: re-aggregate, never forget
};

struct AppRequirements {
  AppId app;
  std::string description;
  std::vector<SensorId> sensors;   ///< data sources the app needs
  SummaryFormat format = SummaryFormat::kTimeBins;
  /// Precision knob of Fig. 3b ("sample rate or bin size"): summary entries.
  std::size_t precision = 1024;
  SimDuration epoch = kMinute;
  StorageClass storage = StorageClass::kExpiration;
  /// TTL (expiration) or byte budget (round-robin); ignored for hierarchical.
  std::uint64_t storage_budget = static_cast<std::uint64_t>(kHour);
};

class Manager {
 public:
  explicit Manager(std::string name = "manager");

  /// Record requirements and return the slot serving them (installing a new
  /// aggregator into `store` only when no compatible slot exists).
  AggregatorId provision(store::DataStore& store, const AppRequirements& requirements);

  /// Drop an application's requirements on a store; slots without remaining
  /// users are uninstalled ("what data should be kept" adapts).
  void release(store::DataStore& store, AppId app);

  /// Aggregate resource view of everything under management.
  struct StoreReport {
    StoreId store;
    std::string name;
    std::size_t slots = 0;
    std::size_t partitions = 0;
    std::size_t memory_bytes = 0;
  };
  [[nodiscard]] std::vector<StoreReport> report() const;

  /// Adapt resources to pressure (Fig. 3b "resource status" -> "change
  /// parameter"): while the store's footprint exceeds `max_bytes`, halve the
  /// precision of its provisioned slots, largest live summary first (floor:
  /// 16 entries). Returns the number of precision reductions applied.
  std::size_t enforce_memory_budget(store::DataStore& store,
                                    std::size_t max_bytes);

  /// Network ledger (the Manager "tracks the availability of network
  /// bandwidth"): components report transfers here.
  void note_transfer(std::uint64_t bytes) noexcept { wan_bytes_ += bytes; }
  [[nodiscard]] std::uint64_t wan_bytes() const noexcept { return wan_bytes_; }

  [[nodiscard]] std::size_t provisioned_slots() const noexcept;

  /// Primitive factory for a format at a given precision — decision (b)/(c).
  [[nodiscard]] static store::AggregatorFactory make_factory(SummaryFormat format,
                                                             std::size_t precision);
  /// Storage strategy for a class/budget — Section IV strategies.
  [[nodiscard]] static std::unique_ptr<store::StorageStrategy> make_storage(
      StorageClass storage, std::uint64_t budget);

 private:
  struct SlotKey {
    StoreId store;
    SummaryFormat format;
    SimDuration epoch;
    StorageClass storage;

    auto operator<=>(const SlotKey&) const = default;
  };
  struct ProvisionedSlot {
    AggregatorId slot;
    std::size_t precision;
    std::vector<AppId> users;
  };

  std::string name_;
  std::map<SlotKey, ProvisionedSlot> slots_;
  std::vector<store::DataStore*> stores_;  // every store ever provisioned
  std::uint64_t wan_bytes_ = 0;
};

}  // namespace megads::arch
