#include "arch/application.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace megads::arch {

Application::Application(AppId id, std::string name)
    : id_(id), name_(std::move(name)) {
  expects(id.valid(), "Application: invalid app id");
}

void Application::start(sim::Simulator& sim, SimDuration period) {
  expects(!loop_.valid(), "Application::start: already started");
  loop_ = sim.schedule_periodic(period, [this](SimTime now) { poll(now); });
}

void Application::stop(sim::Simulator& sim) {
  if (loop_.valid()) {
    sim.cancel(loop_);
    loop_ = {};
  }
}

// --- PredictiveMaintenanceApp -------------------------------------------------

PredictiveMaintenanceApp::PredictiveMaintenanceApp(
    AppId id, const store::DataStore& store, std::vector<MachineFeed> feeds,
    Controller& controller, Config config)
    : Application(id, "predictive-maintenance"),
      store_(&store),
      feeds_(std::move(feeds)),
      controller_(&controller),
      config_(config) {
  expects(config_.trend_window > 0, "PredictiveMaintenanceApp: bad trend window");
}

void PredictiveMaintenanceApp::poll(SimTime now) {
  count_poll();
  const SimDuration w = config_.trend_window;
  if (now < 2 * w) return;  // not enough history yet

  for (const MachineFeed& feed : feeds_) {
    if (ordered_.contains(feed.machine.address().value())) continue;

    const auto stats_of = [&](TimeInterval interval) {
      const auto result =
          store_->query(feed.slot, primitives::StatsQuery{interval}, interval);
      return result.stats;
    };
    const auto recent = stats_of({now - w, now});
    const auto older = stats_of({now - 2 * w, now - w});
    if (!recent || !older || recent->count == 0 || older->count == 0) continue;

    const double slope_per_us =
        (recent->mean - older->mean) / static_cast<double>(w);
    const double slope_per_hour = slope_per_us * static_cast<double>(kHour);
    if (slope_per_us <= 0.0) continue;  // not degrading

    const double room = config_.failure_level - recent->mean;
    if (room <= 0.0) {
      // Already at the failure level: immediate order.
    }
    const SimDuration eta = room <= 0.0
                                ? 0
                                : static_cast<SimDuration>(room / slope_per_us);
    if (eta > config_.horizon) continue;

    MaintenanceOrder order;
    order.machine = feed.machine;
    order.issued = now;
    order.predicted_failure = now + eta;
    order.slope_per_hour = slope_per_hour;
    orders_.push_back(order);
    ordered_.insert(feed.machine.address().value());

    // Act through the controller (validated against installed safety rules).
    flow::FlowKey scope;
    scope.with_src(feed.machine);
    controller_->actuate(feed.machine.to_string() + config_.actuator_suffix, scope,
                         config_.slowdown_setpoint, now,
                         "predictive-maintenance: failure in " +
                             std::to_string((order.predicted_failure - now) / kMinute) +
                             " min");
  }
}

// --- TrafficMonitorApp ---------------------------------------------------------

TrafficMonitorApp::TrafficMonitorApp(AppId id, std::vector<FlowSource> sources,
                                     Controller& controller, Config config)
    : Application(id, "traffic-monitor"),
      sources_(std::move(sources)),
      controller_(&controller),
      config_(config) {
  expects(!sources_.empty(), "TrafficMonitorApp: need at least one source");
  expects(config_.phi > 0.0 && config_.phi <= 1.0, "TrafficMonitorApp: bad phi");
}

void TrafficMonitorApp::poll(SimTime now) {
  count_poll();
  AnalyticsPipeline pipeline("traffic-monitor/hhh");
  const TimeInterval window{std::max<SimTime>(0, now - config_.lookback), now + 1};
  for (const FlowSource& source : sources_) {
    pipeline.from_store(*source.store, source.slot,
                        primitives::HHHQuery{config_.phi}, window);
  }
  pipeline.filter([&](const primitives::KeyScore& row) {
    return row.score >= config_.incident_score;
  });

  for (const primitives::KeyScore& row : pipeline.run()) {
    if (row.key.is_root()) continue;  // "all traffic" is not an incident
    if (!known_heavy_.insert(row.key).second) continue;  // already known
    incidents_.push_back(TrafficIncident{row.key, row.score, now});
    controller_->actuate(config_.actuator, row.key, config_.limit_setpoint, now,
                         "traffic-monitor: new heavy hitter " + row.key.to_string());
  }
}

}  // namespace megads::arch
