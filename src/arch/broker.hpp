// RemoteQueryBroker — Fig. 6 realized inside the architecture.
//
// A data store that needs data held by another store either ships the query
// (pay result bytes + WAN latency per access) or replicates the partition
// (pay its full size once, then serve locally). The broker:
//
//   1  records every partition access (time + result volume),
//   2  consults a repl::ReplicationPolicy ("predict future accesses"),
//   3  starts replication when the policy crosses its threshold,
//   4  executes the copy over the Transport and serves locally from then on.
//
// The manager's transfer ledger is charged for all WAN bytes. The broker
// speaks Transport, never a concrete network: over SimTransport the bytes
// ride the store-and-forward WAN on virtual time, over LoopbackTransport the
// same decisions run in a plain unit test.
#pragma once

#include <map>
#include <memory>

#include "arch/manager.hpp"
#include "net/transport.hpp"
#include "repl/policy.hpp"
#include "sim/simulator.hpp"
#include "store/datastore.hpp"

namespace megads::arch {

/// Handle naming one sealed partition of a remote store.
struct RemotePartition {
  const store::DataStore* store = nullptr;
  AggregatorId slot;
  PartitionId partition;
  NodeId location;  ///< network node the remote store lives on
};

/// Outcome of one brokered access.
struct BrokeredResult {
  primitives::QueryResult result;
  SimDuration latency = 0;     ///< WAN transfer time paid by this access
  bool served_locally = false;
  bool replicated_now = false; ///< this access triggered the replication
};

class RemoteQueryBroker {
 public:
  /// All references must outlive the broker. `manager` may be null.
  RemoteQueryBroker(net::Transport& transport, NodeId local_node,
                    repl::ReplicationPolicy& policy, Manager* manager = nullptr);

  /// Query one remote partition; the broker decides ship vs replicate.
  BrokeredResult query(const RemotePartition& remote,
                       const primitives::Query& query);

  [[nodiscard]] std::size_t replicas() const noexcept { return replicas_.size(); }
  [[nodiscard]] std::uint64_t shipped_bytes() const noexcept { return shipped_; }
  [[nodiscard]] std::uint64_t replicated_bytes() const noexcept {
    return replicated_;
  }
  [[nodiscard]] std::uint64_t local_accesses() const noexcept { return local_; }
  [[nodiscard]] std::uint64_t remote_accesses() const noexcept { return remote_; }

  /// Size in bytes a query result occupies on the wire (cost model).
  [[nodiscard]] static std::uint64_t result_wire_bytes(
      const primitives::QueryResult& result);

 private:
  struct Key {
    StoreId store;
    PartitionId::underlying_type partition;
    auto operator<=>(const Key&) const = default;
  };

  const store::Partition* find_partition(const RemotePartition& remote) const;

  net::Transport* transport_;
  NodeId local_node_;
  repl::ReplicationPolicy* policy_;
  Manager* manager_;
  std::map<Key, std::unique_ptr<primitives::Aggregator>> replicas_;
  /// Broker-local partition ids handed to the policy (store-scoped ids from
  /// different stores would collide).
  std::map<Key, PartitionId> policy_ids_;
  std::uint32_t next_policy_id_ = 0;
  std::uint64_t shipped_ = 0;
  std::uint64_t replicated_ = 0;
  std::uint64_t local_ = 0;
  std::uint64_t remote_ = 0;
};

}  // namespace megads::arch
