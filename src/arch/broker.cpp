#include "arch/broker.hpp"

#include "common/error.hpp"

namespace megads::arch {

RemoteQueryBroker::RemoteQueryBroker(net::Transport& transport, NodeId local_node,
                                     repl::ReplicationPolicy& policy,
                                     Manager* manager)
    : transport_(&transport),
      local_node_(local_node),
      policy_(&policy),
      manager_(manager) {}

std::uint64_t RemoteQueryBroker::result_wire_bytes(
    const primitives::QueryResult& result) {
  constexpr std::uint64_t kEnvelope = 16;
  constexpr std::uint64_t kEntryBytes = flow::FlowKey::kWireSize + 8;
  constexpr std::uint64_t kPointBytes = flow::FlowKey::kWireSize + 16;
  return kEnvelope + result.entries.size() * kEntryBytes +
         result.points.size() * kPointBytes + (result.stats ? 48 : 0);
}

const store::Partition* RemoteQueryBroker::find_partition(
    const RemotePartition& remote) const {
  expects(remote.store != nullptr, "RemoteQueryBroker: null store");
  for (const store::Partition& partition : remote.store->partitions(remote.slot)) {
    if (partition.id == remote.partition) return &partition;
  }
  return nullptr;
}

BrokeredResult RemoteQueryBroker::query(const RemotePartition& remote,
                                        const primitives::Query& query) {
  const Key key{remote.store->id(), remote.partition.value()};

  // Served from a local replica: no WAN involvement at all.
  if (const auto it = replicas_.find(key); it != replicas_.end()) {
    BrokeredResult outcome;
    outcome.result = it->second->execute(query);
    outcome.served_locally = true;
    ++local_;
    return outcome;
  }

  const store::Partition* partition = find_partition(remote);
  if (partition == nullptr) {
    throw NotFoundError("RemoteQueryBroker: partition no longer exists at the "
                        "remote store (evicted?)");
  }

  BrokeredResult outcome;
  outcome.result = partition->summary->execute(query);
  const std::uint64_t result_bytes = result_wire_bytes(outcome.result);
  const std::uint64_t partition_bytes = partition->summary->wire_bytes();

  auto [id_it, inserted] = policy_ids_.try_emplace(key, PartitionId{});
  if (inserted) {
    id_it->second = PartitionId(next_policy_id_++);
    policy_->on_partition_created(id_it->second, remote.store->now(),
                                  partition_bytes);
  }

  if (policy_->on_access(id_it->second, remote.store->now(), result_bytes)) {
    // Replicate first (Fig. 6 steps 3/4), then serve locally.
    transport_->send(remote.location, local_node_, partition_bytes);
    outcome.latency = transport_->transfer_time_unloaded(remote.location,
                                                         local_node_,
                                                         partition_bytes);
    replicas_.emplace(key, partition->summary->clone());
    replicated_ += partition_bytes;
    if (manager_ != nullptr) manager_->note_transfer(partition_bytes);
    outcome.served_locally = true;
    outcome.replicated_now = true;
    ++local_;
    return outcome;
  }

  // Ship the result.
  transport_->send(remote.location, local_node_, result_bytes);
  outcome.latency = transport_->transfer_time_unloaded(remote.location,
                                                       local_node_, result_bytes);
  shipped_ += result_bytes;
  if (manager_ != nullptr) manager_->note_transfer(result_bytes);
  ++remote_;
  return outcome;
}

}  // namespace megads::arch
