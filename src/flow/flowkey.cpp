#include "flow/flowkey.hpp"

#include "common/error.hpp"

namespace megads::flow {

FlowKey FlowKey::from_tuple(std::uint8_t proto, IPv4 src, std::uint16_t src_port,
                            IPv4 dst, std::uint16_t dst_port, FeatureSet features) {
  FlowKey key;
  if (has_feature(features, FeatureSet::kProto)) key.with_proto(proto);
  if (has_feature(features, FeatureSet::kSrcIp)) key.with_src(Prefix(src, 32));
  if (has_feature(features, FeatureSet::kDstIp)) key.with_dst(Prefix(dst, 32));
  if (has_feature(features, FeatureSet::kSrcPort)) key.with_src_port(src_port);
  if (has_feature(features, FeatureSet::kDstPort)) key.with_dst_port(dst_port);
  return key;
}

FlowKey& FlowKey::with_proto(std::uint8_t proto) noexcept {
  proto_ = proto;
  proto_present_ = true;
  return *this;
}

FlowKey& FlowKey::with_src(Prefix p) noexcept {
  src_ = p;
  return *this;
}

FlowKey& FlowKey::with_dst(Prefix p) noexcept {
  dst_ = p;
  return *this;
}

FlowKey& FlowKey::with_src_port(std::uint16_t port) noexcept {
  src_port_ = port;
  src_port_present_ = true;
  return *this;
}

FlowKey& FlowKey::with_dst_port(std::uint16_t port) noexcept {
  dst_port_ = port;
  dst_port_present_ = true;
  return *this;
}

bool FlowKey::is_root() const noexcept {
  return !proto_present_ && !src_port_present_ && !dst_port_present_ &&
         src_.is_wildcard() && dst_.is_wildcard();
}

std::optional<FlowKey> FlowKey::parent(const GeneralizationPolicy& policy) const {
  expects(policy.ip_step > 0, "FlowKey::parent: ip_step must be positive");
  FlowKey p = *this;
  // Canonical generalization order (most specific first): source port,
  // destination port, protocol, destination-IP bits, source-IP bits. Source
  // prefixes sit closest to the root so that the classic "traffic by source
  // prefix" summaries are ancestors of every flow (see header).
  if (src_port_present_) {
    p.src_port_present_ = false;
    p.src_port_ = 0;
    return p;
  }
  if (dst_port_present_) {
    p.dst_port_present_ = false;
    p.dst_port_ = 0;
    return p;
  }
  if (proto_present_) {
    p.proto_present_ = false;
    p.proto_ = 0;
    return p;
  }
  if (dst_.length() > 0) {
    p.dst_ = dst_.shortened(policy.ip_step);
    return p;
  }
  if (src_.length() > 0) {
    p.src_ = src_.shortened(policy.ip_step);
    return p;
  }
  return std::nullopt;  // root
}

int FlowKey::depth(const GeneralizationPolicy& policy) const {
  expects(policy.ip_step > 0, "FlowKey::depth: ip_step must be positive");
  const auto ip_steps = [&](const Prefix& p) {
    return (p.length() + policy.ip_step - 1) / policy.ip_step;
  };
  return (src_port_present_ ? 1 : 0) + (dst_port_present_ ? 1 : 0) +
         ip_steps(src_) + ip_steps(dst_) + (proto_present_ ? 1 : 0);
}

bool FlowKey::generalizes(const FlowKey& other) const noexcept {
  if (proto_present_ && (!other.proto_present_ || proto_ != other.proto_)) {
    return false;
  }
  if (!src_.contains(other.src_)) return false;
  if (!dst_.contains(other.dst_)) return false;
  if (src_port_present_ &&
      (!other.src_port_present_ || src_port_ != other.src_port_)) {
    return false;
  }
  if (dst_port_present_ &&
      (!other.dst_port_present_ || dst_port_ != other.dst_port_)) {
    return false;
  }
  return true;
}

FlowKey FlowKey::project(FeatureSet features) const noexcept {
  FlowKey p;
  if (has_feature(features, FeatureSet::kProto) && proto_present_) {
    p.with_proto(proto_);
  }
  if (has_feature(features, FeatureSet::kSrcIp)) p.src_ = src_;
  if (has_feature(features, FeatureSet::kDstIp)) p.dst_ = dst_;
  if (has_feature(features, FeatureSet::kSrcPort) && src_port_present_) {
    p.with_src_port(src_port_);
  }
  if (has_feature(features, FeatureSet::kDstPort) && dst_port_present_) {
    p.with_dst_port(dst_port_);
  }
  return p;
}

std::uint64_t FlowKey::hash() const noexcept {
  std::uint64_t h = mix64((std::uint64_t{src_.address().value()} << 32) |
                          dst_.address().value());
  h = hash_combine(h, (std::uint64_t{static_cast<std::uint32_t>(src_.length())} << 48) |
                         (std::uint64_t{static_cast<std::uint32_t>(dst_.length())} << 40) |
                         (std::uint64_t{src_port_} << 24) |
                         (std::uint64_t{dst_port_} << 8) | proto_);
  h = hash_combine(h, (std::uint64_t{proto_present_} << 2) |
                         (std::uint64_t{src_port_present_} << 1) |
                         std::uint64_t{dst_port_present_});
  return h;
}

std::string FlowKey::to_string() const {
  std::string out = "proto=";
  out += proto_present_ ? std::to_string(proto_) : "*";
  out += " src=";
  out += src_.is_wildcard() && src_.length() == 0 ? "*" : src_.to_string();
  out += ":";
  out += src_port_present_ ? std::to_string(src_port_) : "*";
  out += " dst=";
  out += dst_.is_wildcard() && dst_.length() == 0 ? "*" : dst_.to_string();
  out += ":";
  out += dst_port_present_ ? std::to_string(dst_port_) : "*";
  return out;
}

}  // namespace megads::flow
