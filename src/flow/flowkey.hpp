// Generalized flows (Section VI of the paper).
//
// A FlowKey is a possibly-generalized 5-tuple: protocol, source/destination
// prefix, source/destination port, where each feature may be wildcarded and
// IP features may be partially masked. FeatureSet selects which features a
// particular Flowtree instance uses ("5-feature flows", "2-feature flows").
//
// The paper defines parenthood as "the most specific generalized flow". To
// make that a *tree* rather than a lattice, generalization follows a fixed
// canonical order: source port, then destination port, then protocol, then
// destination-IP bits, then source-IP bits. Every key therefore has a unique
// chain of ancestors up to the fully wildcarded root, and pure source-prefix
// keys (the classic "traffic from a.b.c.0/24" summaries) lie on the chain of
// every flow they contain.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>

#include "common/hash.hpp"
#include "flow/ipv4.hpp"

namespace megads::flow {

/// Bitmask of the features a flow key carries.
enum class FeatureSet : std::uint8_t {
  kNone = 0,
  kProto = 1 << 0,
  kSrcIp = 1 << 1,
  kDstIp = 1 << 2,
  kSrcPort = 1 << 3,
  kDstPort = 1 << 4,
  /// The classical 5-tuple.
  kFiveTuple = kProto | kSrcIp | kDstIp | kSrcPort | kDstPort,
  /// Example 2-feature sets from the paper.
  kSrcDst = kSrcIp | kDstIp,
  kDstIpDstPort = kDstIp | kDstPort,
};

constexpr FeatureSet operator|(FeatureSet a, FeatureSet b) noexcept {
  return static_cast<FeatureSet>(static_cast<std::uint8_t>(a) |
                                 static_cast<std::uint8_t>(b));
}
constexpr FeatureSet operator&(FeatureSet a, FeatureSet b) noexcept {
  return static_cast<FeatureSet>(static_cast<std::uint8_t>(a) &
                                 static_cast<std::uint8_t>(b));
}
constexpr bool has_feature(FeatureSet set, FeatureSet feature) noexcept {
  return (set & feature) != FeatureSet::kNone;
}

/// How keys climb the generalization hierarchy.
struct GeneralizationPolicy {
  /// Bits removed from an IP prefix per generalization step.
  int ip_step = 8;

  friend constexpr bool operator==(const GeneralizationPolicy&,
                                   const GeneralizationPolicy&) = default;
};

/// A (possibly generalized) flow identifier.
class FlowKey {
 public:
  /// The fully wildcarded root key.
  FlowKey() noexcept = default;

  /// Fully specific key from concrete header fields, restricted to `features`.
  static FlowKey from_tuple(std::uint8_t proto, IPv4 src, std::uint16_t src_port,
                            IPv4 dst, std::uint16_t dst_port,
                            FeatureSet features = FeatureSet::kFiveTuple);

  // --- feature accessors (nullopt == wildcard) ---
  [[nodiscard]] std::optional<std::uint8_t> proto() const noexcept {
    return proto_present_ ? std::optional<std::uint8_t>(proto_) : std::nullopt;
  }
  [[nodiscard]] const Prefix& src() const noexcept { return src_; }
  [[nodiscard]] const Prefix& dst() const noexcept { return dst_; }
  [[nodiscard]] std::optional<std::uint16_t> src_port() const noexcept {
    return src_port_present_ ? std::optional<std::uint16_t>(src_port_) : std::nullopt;
  }
  [[nodiscard]] std::optional<std::uint16_t> dst_port() const noexcept {
    return dst_port_present_ ? std::optional<std::uint16_t>(dst_port_) : std::nullopt;
  }

  // --- feature setters (builder style, returns *this) ---
  FlowKey& with_proto(std::uint8_t proto) noexcept;
  FlowKey& with_src(Prefix p) noexcept;
  FlowKey& with_dst(Prefix p) noexcept;
  FlowKey& with_src_port(std::uint16_t port) noexcept;
  FlowKey& with_dst_port(std::uint16_t port) noexcept;

  [[nodiscard]] bool is_root() const noexcept;

  /// The unique parent in the canonical generalization order, or nullopt for
  /// the root.
  [[nodiscard]] std::optional<FlowKey> parent(
      const GeneralizationPolicy& policy = {}) const;

  /// Number of generalization steps from the root (root has depth 0).
  [[nodiscard]] int depth(const GeneralizationPolicy& policy = {}) const;

  /// True when this key is equal to `other` or a generalization of it
  /// (partial order; does not require the canonical chain).
  [[nodiscard]] bool generalizes(const FlowKey& other) const noexcept;

  /// Drop all features outside `features` (projection to a coarser set).
  [[nodiscard]] FlowKey project(FeatureSet features) const noexcept;

  /// Serialized wire size in bytes (used by the network cost model).
  static constexpr std::size_t kWireSize = 16;

  [[nodiscard]] std::uint64_t hash() const noexcept;
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const FlowKey&, const FlowKey&) noexcept = default;
  /// Deterministic total order (report tie-breaking). The order itself is
  /// arbitrary but fixed: two runs — or two nodes folding the same summaries
  /// in different groupings — rank equal-score rows identically.
  friend auto operator<=>(const FlowKey&, const FlowKey&) noexcept = default;

 private:
  Prefix src_{};
  Prefix dst_{};
  std::uint16_t src_port_ = 0;
  std::uint16_t dst_port_ = 0;
  std::uint8_t proto_ = 0;
  bool proto_present_ = false;
  bool src_port_present_ = false;
  bool dst_port_present_ = false;
};

/// A measured, fully specific flow plus its metrics — the unit the routers
/// export and the generators produce.
struct FlowRecord {
  FlowKey key;
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  std::int64_t timestamp = 0;  ///< SimTime of the observation
};

}  // namespace megads::flow

template <>
struct std::hash<megads::flow::FlowKey> {
  std::size_t operator()(const megads::flow::FlowKey& k) const noexcept {
    return static_cast<std::size_t>(k.hash());
  }
};
