#include "flow/ipv4.hpp"

#include <charconv>

#include "common/error.hpp"

namespace megads::flow {

namespace {

// Parses an integer in [0, max] from [it, end), advancing it.
int parse_component(const char*& it, const char* end, int max) {
  int value = 0;
  const auto [ptr, ec] = std::from_chars(it, end, value);
  if (ec != std::errc{} || ptr == it || value < 0 || value > max) {
    throw ParseError("IPv4: malformed component in address literal");
  }
  it = ptr;
  return value;
}

}  // namespace

IPv4 IPv4::parse(const std::string& text) {
  const char* it = text.data();
  const char* const end = text.data() + text.size();
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    if (i > 0) {
      if (it == end || *it != '.') throw ParseError("IPv4: expected '.' in " + text);
      ++it;
    }
    value = (value << 8) | static_cast<std::uint32_t>(parse_component(it, end, 255));
  }
  if (it != end) throw ParseError("IPv4: trailing characters in " + text);
  return IPv4(value);
}

std::string IPv4::to_string() const {
  return std::to_string((value_ >> 24) & 0xff) + '.' +
         std::to_string((value_ >> 16) & 0xff) + '.' +
         std::to_string((value_ >> 8) & 0xff) + '.' + std::to_string(value_ & 0xff);
}

Prefix Prefix::parse(const std::string& text) {
  const auto slash = text.find('/');
  if (slash == std::string::npos) return Prefix(IPv4::parse(text), 32);
  const IPv4 addr = IPv4::parse(text.substr(0, slash));
  const std::string len_str = text.substr(slash + 1);
  int length = 0;
  const auto [ptr, ec] =
      std::from_chars(len_str.data(), len_str.data() + len_str.size(), length);
  if (ec != std::errc{} || ptr != len_str.data() + len_str.size() || length < 0 ||
      length > 32) {
    throw ParseError("Prefix: malformed length in " + text);
  }
  return Prefix(addr, length);
}

std::string Prefix::to_string() const {
  return address().to_string() + '/' + std::to_string(length());
}

}  // namespace megads::flow
