// IPv4 addresses and prefixes.
//
// The paper's domain knowledge for network monitoring is the IP prefix
// hierarchy: "an IP a.b.c.d is part of the prefix a.b.c.d/n1 and a.b.c.d/n1
// is a more specific of a.b.c.d/n2 if n1 > n2". Prefix implements exactly
// that partial order.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace megads::flow {

/// An IPv4 address as a host-order 32-bit value.
class IPv4 {
 public:
  constexpr IPv4() noexcept = default;
  constexpr explicit IPv4(std::uint32_t value) noexcept : value_(value) {}
  /// Build from dotted-quad components.
  constexpr IPv4(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                 std::uint8_t d) noexcept
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  [[nodiscard]] constexpr std::uint32_t value() const noexcept { return value_; }

  /// Parse "a.b.c.d"; throws ParseError on malformed input.
  static IPv4 parse(const std::string& text);

  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(IPv4, IPv4) noexcept = default;

 private:
  std::uint32_t value_ = 0;
};

/// Bit mask with the top `length` bits set (length in [0, 32]).
constexpr std::uint32_t prefix_mask(int length) noexcept {
  return length <= 0 ? 0u : (length >= 32 ? ~0u : ~0u << (32 - length));
}

/// An IPv4 prefix: address plus mask length. Stored canonically (bits below
/// the mask are zero).
class Prefix {
 public:
  constexpr Prefix() noexcept = default;  // 0.0.0.0/0 — the wildcard
  constexpr Prefix(IPv4 addr, int length) noexcept
      : addr_(addr.value() & prefix_mask(length)),
        length_(static_cast<std::int8_t>(length < 0 ? 0 : (length > 32 ? 32 : length))) {}

  [[nodiscard]] constexpr IPv4 address() const noexcept { return IPv4(addr_); }
  [[nodiscard]] constexpr int length() const noexcept { return length_; }
  [[nodiscard]] constexpr bool is_wildcard() const noexcept { return length_ == 0; }

  /// True when `addr` lies inside this prefix.
  [[nodiscard]] constexpr bool contains(IPv4 addr) const noexcept {
    return (addr.value() & prefix_mask(length_)) == addr_;
  }
  /// True when `other` is equal to or more specific than this prefix.
  [[nodiscard]] constexpr bool contains(const Prefix& other) const noexcept {
    return other.length_ >= length_ && contains(other.address());
  }

  /// The prefix shortened by `bits` (floored at /0).
  [[nodiscard]] constexpr Prefix shortened(int bits) const noexcept {
    return Prefix(IPv4(addr_), length_ - bits);
  }

  /// Parse "a.b.c.d/n" (or bare "a.b.c.d" as /32).
  static Prefix parse(const std::string& text);

  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(const Prefix&, const Prefix&) noexcept = default;

 private:
  std::uint32_t addr_ = 0;
  std::int8_t length_ = 0;
};

}  // namespace megads::flow
