// Network monitoring end-to-end (the paper's Section VI walk-through):
// routers stream flows into Flowtree data stores; summaries are exported over
// a simulated WAN into regional stores and a cloud FlowDB; a traffic-monitor
// application watches for emerging heavy hitters (a DDoS ramp injected mid-
// run) and installs a rate limit through the controller; an operator asks
// FlowQL questions at the end.
#include <cstdio>

#include "arch/application.hpp"
#include "common/bytes.hpp"
#include "common/metrics.hpp"
#include "flowstream/flowstream.hpp"
#include "lineage/lineage.hpp"
#include "trace/flowgen.hpp"

using namespace megads;

int main() {
  sim::Simulator simulator;
  flowstream::FlowstreamConfig config;
  config.regions = 2;
  config.routers_per_region = 2;
  config.epoch = kSecond;
  config.router_budget = 4096;
  flowstream::Flowstream system(simulator, config);
  lineage::Recorder lineage_recorder;  // Section III.C: track provenance
  system.attach_lineage(lineage_recorder);
  metrics::MetricsRegistry registry;  // instrument the whole pipeline
  system.attach_metrics(registry);
  system.start();

  // The monitoring application polls the regional stores' flow summaries.
  arch::Controller controller;
  arch::TrafficMonitorApp::Config app_config;
  app_config.phi = 0.10;
  app_config.lookback = 10 * kSecond;
  arch::TrafficMonitorApp monitor(
      AppId(1),
      {{&system.region_store(0), system.region_slot(0)},
       {&system.region_store(1), system.region_slot(1)}},
      controller, app_config);
  monitor.start(simulator, 2 * kSecond);

  std::vector<trace::FlowGenerator> generators;
  for (std::uint32_t site = 0; site < 4; ++site) {
    trace::FlowGenConfig gen;
    gen.seed = 11;
    gen.site = site;
    gen.flows_per_second = 500.0;
    generators.emplace_back(gen);
  }

  // 30 virtual seconds of traffic; a volumetric attack from a single source
  // ramps up at t = 15s toward router 0.0.
  const flow::IPv4 attacker(203, 0, 113, 66);
  constexpr SimTime kAttackStart = 15 * kSecond;
  for (SimTime t = 0; t < 30 * kSecond; t += 100 * kMillisecond) {
    simulator.run_until(t);
    // One batch per router per tick: each store resolves subscriptions and
    // seals once per batch instead of once per record.
    for (std::uint32_t site = 0; site < 4; ++site) {
      auto records = generators[site].generate_for(100 * kMillisecond);
      for (auto& record : records) record.timestamp = t;
      if (site == 0 && t >= kAttackStart) {
        flow::FlowRecord attack;
        attack.key = flow::FlowKey::from_tuple(17, attacker, 53,
                                               flow::IPv4(198, 51, 100, 7), 53);
        attack.packets = 10000;
        attack.bytes = 10000 * 1200;
        attack.timestamp = t;
        records.push_back(attack);
      }
      system.ingest_batch(site / 2, site % 2, records);
    }
  }
  simulator.run_until(45 * kSecond);

  std::printf("== incidents detected by the traffic monitor ==\n");
  for (const auto& incident : monitor.incidents()) {
    std::printf("  t=%5.1fs  score=%s  %s\n", to_seconds(incident.detected),
                format_si(incident.score).c_str(),
                incident.key.to_string().c_str());
  }
  std::printf("controller actions: %zu (first: %s)\n\n", controller.log().size(),
              controller.log().empty() ? "-" : controller.log()[0].reason.c_str());

  std::printf("== operator queries via FlowQL ==\n");
  const auto show = [&](const char* title, const std::string& statement) {
    std::printf("\n%s\n  %s\n", title, statement.c_str());
    std::printf("%s", system.query(statement).to_string().c_str());
  };
  show("Who are the top talkers across all sites?",
       "SELECT topk(5) FROM 0s..30s");
  show("Hierarchical heavy hitters network-wide:",
       "SELECT hhh(0.05) FROM 0s..30s");
  show("How much did the attacker send (all sites)?",
       "SELECT query FROM 0s..30s WHERE src = 203.0.113.66");
  show("What changed between the first and second half?",
       "SELECT diff(5) FROM 0s..15s, 15s..30s");
  show("Drill into the attacker's /8 on router-0.0 only:",
       "SELECT drilldown FROM 0s..30s WHERE src = 203.0.0.0/8 "
       "AND location = 'router-0.0'");

  std::printf("\nWAN payload shipped: %s for %llu summaries\n",
              format_bytes(system.network().stats().payload_bytes).c_str(),
              static_cast<unsigned long long>(system.summaries_indexed()));

  // Everything above is also visible through the metrics registry: per-store
  // ingest throughput, seal/merge counts, per-link WAN volume, FlowQL latency.
  std::printf("\n== metrics snapshot ==\n%s",
              registry.snapshot().to_string().c_str());

  // Lineage (Section III.C): suppose router-0.0's feed turns out faulty —
  // what must be retracted?
  const auto source = system.router_store(0, 0).lineage_of_sensor(SensorId(0));
  if (source != lineage::kNoEntity) {
    std::size_t partitions = 0, exports = 0, indexed = 0;
    for (const auto id : lineage_recorder.descendants(source)) {
      const auto& entity = lineage_recorder.entity(id);
      switch (entity.kind) {
        case lineage::EntityKind::kPartition:
          entity.label.rfind("flowdb/", 0) == 0 ? ++indexed : ++partitions;
          break;
        case lineage::EntityKind::kExport: ++exports; break;
        default: break;
      }
    }
    std::printf(
        "\n== lineage audit: if router-0.0's feed were faulty ==\n"
        "tainted: %zu sealed partitions, %zu exports, %zu FlowDB entries "
        "(of %llu lineage entities total)\n",
        partitions, exports, indexed,
        static_cast<unsigned long long>(lineage_recorder.entity_count()));
  }
  return 0;
}
