// Distributed FlowDB walk-through (PR 6): a generated multi-site trace flows
// through partition servers and a scatter-gather coordinator over the
// simulated WAN, then answers FlowQL — the executor cannot tell it is not
// talking to a single local FlowDB.
//
//   generator ──▶ coordinator ──(kAddBatch over SimTransport)──▶ 4 partition
//   servers, each one shard of the summary index; every SELECT scatters
//   kQueryRequest envelopes to the shards the partitioner cannot rule out,
//   gathers their per-location stage-1 folds, and merges them exactly as a
//   single node would (Table II).
//
// The run ends with a `.metrics` style dump: the net.* counters show the
// envelope traffic the queries actually paid on the virtual WAN.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "flowdb/executor.hpp"
#include "flowdb/partitioned/coordinator.hpp"
#include "flowdb/partitioned/server.hpp"
#include "net/transport.hpp"
#include "sim/simulator.hpp"
#include "trace/flowgen.hpp"

using namespace megads;

int main() {
  constexpr std::size_t kPartitions = 4;
  constexpr std::uint32_t kSites = 3;
  constexpr int kEpochs = 4;

  flowtree::FlowtreeConfig tree_config;
  tree_config.node_budget = 8192;

  // The cluster: a querier node and one node per shard, star topology with
  // 5 ms / 1 Gb/s links each way.
  sim::Simulator sim;
  net::Topology topo;
  const NodeId querier = topo.add_node("querier");
  std::vector<NodeId> shard_nodes;
  for (std::size_t i = 0; i < kPartitions; ++i) {
    const NodeId node = topo.add_node("shard-" + std::to_string(i));
    topo.add_link(querier, node, 5000, 1.25e8);
    topo.add_link(node, querier, 5000, 1.25e8);
    shard_nodes.push_back(node);
  }
  net::Network network(sim, topo);
  net::SimTransport transport(network);
  metrics::MetricsRegistry registry;
  transport.attach_metrics(registry);

  std::vector<std::unique_ptr<flowdb::dist::PartitionServer>> servers;
  for (const NodeId node : shard_nodes) {
    servers.push_back(std::make_unique<flowdb::dist::PartitionServer>(
        transport, node, tree_config));
  }
  flowdb::dist::Coordinator::Options options;
  options.tree_config = tree_config;
  flowdb::dist::Coordinator coordinator(
      transport, querier, flowdb::dist::make_partitioner("by-location"),
      shard_nodes, options);
  // Stray-traffic visibility: net.dropped_coordinator / net.dropped_server
  // appear in the .metrics dump below (zero in a healthy run).
  coordinator.attach_metrics(registry);
  for (auto& server : servers) server->attach_metrics(registry);

  // Generator -> coordinator: per site and epoch, one summary routed to its
  // shard (by-location: a site's whole history lands on one server).
  for (std::uint32_t site = 0; site < kSites; ++site) {
    trace::FlowGenConfig gen_config;
    gen_config.seed = 7;
    gen_config.site = site;
    gen_config.flows_per_second = 600.0;
    trace::FlowGenerator generator(gen_config);
    for (int epoch = 0; epoch < kEpochs; ++epoch) {
      flowtree::Flowtree tree(tree_config);
      const auto records = generator.generate_for(kMinute);
      std::vector<primitives::StreamItem> items;
      items.reserve(records.size());
      for (const auto& record : records) {
        primitives::StreamItem item;
        item.key = record.key;
        item.value = static_cast<double>(record.bytes);
        item.timestamp = record.timestamp;
        items.push_back(item);
      }
      tree.insert_batch(items);
      coordinator.add(std::move(tree),
                      TimeInterval{epoch * kMinute, (epoch + 1) * kMinute},
                      "site-" + std::to_string(site));
    }
  }
  coordinator.flush();
  transport.run_until_idle();

  std::printf("cluster: %zu partition servers behind one coordinator\n",
              servers.size());
  for (std::size_t i = 0; i < servers.size(); ++i) {
    std::printf("  shard-%zu holds %zu summaries\n", i,
                servers[i]->db().summary_count());
  }

  const std::vector<std::string> statements = {
      "SELECT topk(5) FROM 0m..4m",
      "SELECT topk(3) FROM 0m..4m WHERE location = 'site-1'",
      "SELECT hhh(0.05) FROM 1m..3m",
  };
  for (const std::string& statement : statements) {
    std::printf("\nflowql> %s\n", statement.c_str());
    try {
      const flowdb::Table table = flowdb::run_flowql(statement, coordinator);
      std::printf("%s(%zu rows)\n", table.to_string().c_str(),
                  table.row_count());
    } catch (const Error& error) {
      std::printf("error: %s\n", error.what());
    }
  }

  std::printf("\nremote shard queries: %llu (scatter fan-out after pruning)\n",
              static_cast<unsigned long long>(coordinator.remote_shard_queries()));
  std::printf(".metrics\n%s", registry.snapshot().to_string().c_str());
  std::printf("virtual time consumed: %.3f s\n",
              static_cast<double>(sim.now()) / kSecond);
  return 0;
}
