// Interactive FlowQL shell over a generated multi-site trace (Fig. 5,
// arrow 5). Feeds two sites x three epochs of synthetic flows into a FlowDB
// and then reads FlowQL statements from stdin.
//
//   $ ./flowql_repl
//   flowql> SELECT topk(10) FROM 0m..3m
//   flowql> SELECT hhh(0.05) FROM 0m..3m WHERE location = 'site-0'
//   flowql> SELECT diff(10) FROM 0m..1m, 2m..3m
//   flowql> .metrics        (dump the metrics registry snapshot)
//
// Piping works too:  echo "SELECT topk(3) FROM 0m..3m" | ./flowql_repl
#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "flowdb/executor.hpp"
#include "flowdb/flowdb.hpp"
#include "trace/flowgen.hpp"

using namespace megads;

int main() {
  flowtree::FlowtreeConfig tree_config;
  tree_config.node_budget = 8192;
  flowdb::FlowDB db(tree_config);
  metrics::MetricsRegistry registry;
  db.attach_metrics(registry);  // .metrics shows view-cache hits/misses/bytes
  metrics::Counter& ingested = registry.counter("repl.flows_ingested");
  metrics::Histogram& query_us = registry.histogram("flowql.query_us");

  for (std::uint32_t site = 0; site < 2; ++site) {
    trace::FlowGenConfig gen_config;
    gen_config.seed = 5;
    gen_config.site = site;
    gen_config.flows_per_second = 800.0;
    trace::FlowGenerator generator(gen_config);
    for (int epoch = 0; epoch < 3; ++epoch) {
      flowtree::Flowtree tree(tree_config);
      // One batch per epoch: the whole window goes through insert_batch.
      const auto records = generator.generate_for(kMinute);
      std::vector<primitives::StreamItem> items;
      items.reserve(records.size());
      for (const auto& record : records) {
        primitives::StreamItem item;
        item.key = record.key;
        item.value = static_cast<double>(record.bytes);
        item.timestamp = record.timestamp;
        items.push_back(item);
      }
      tree.insert_batch(items);
      ingested.add(items.size());
      db.add(std::move(tree), TimeInterval{epoch * kMinute, (epoch + 1) * kMinute},
             "site-" + std::to_string(site));
    }
  }

  std::printf("FlowDB loaded: %zu summaries, locations:", db.summary_count());
  for (const auto& location : db.locations()) std::printf(" %s", location.c_str());
  std::printf(", coverage %s..%s\n",
              std::to_string(db.coverage()->begin / kMinute).c_str(),
              std::to_string(db.coverage()->end / kMinute).c_str());
  std::printf("enter FlowQL statements (empty line or EOF quits):\n");

  std::string line;
  while (true) {
    std::printf("flowql> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line) || line.empty()) break;
    if (line == ".metrics") {
      std::printf("%s", registry.snapshot().to_string().c_str());
      continue;
    }
    try {
      const auto started = std::chrono::steady_clock::now();
      const flowdb::Table table = flowdb::run_flowql(line, db);
      query_us.observe(static_cast<double>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - started)
              .count()));
      std::printf("%s(%zu rows)\n", table.to_string().c_str(), table.row_count());
    } catch (const Error& error) {
      std::printf("error: %s\n", error.what());
    }
  }
  return 0;
}
