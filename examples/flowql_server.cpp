// FlowQL serving tier walk-through (PR 9): an in-process FlowQLServer
// exposes a populated FlowDB over real loopback TCP, and a handful of
// Clients exercise every request type of the wire protocol:
//
//   client ──(length-prefixed frames)──▶ server poll loop ──▶ request
//   scheduler (admission control) ──▶ worker pool ──▶ FlowQL executor,
//   responses streaming back as chunked frames on the same socket.
//
// The run shows a query (byte-identical to direct execution), the .metrics
// endpoint, a live subscription pushing periodic results, a deliberately
// bad statement coming back as a typed wire error, and finally the serve.*
// accounting the server kept while doing all of it.
#include <cstdio>
#include <string>

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "flow/flowkey.hpp"
#include "flowdb/executor.hpp"
#include "flowdb/flowdb.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

using namespace megads;

int main() {
  // A small FlowDB: two sites, six flows, one hour of epochs.
  flowtree::FlowtreeConfig config;
  config.node_budget = 1 << 16;
  flowdb::FlowDB db(config);
  for (int i = 0; i < 12; ++i) {
    flowtree::Flowtree tree(config);
    const flow::FlowKey key = flow::FlowKey::from_tuple(
        6, flow::IPv4(10, 0, 0, static_cast<std::uint8_t>(1 + i % 4)), 40000,
        flow::IPv4(192, 0, 2, 1), 443);
    tree.add(key, static_cast<double>(10 + i));
    db.add(std::move(tree),
           TimeInterval{(i % 6) * 600 * kSecond, ((i % 6) * 600 + 600) * kSecond},
           i % 2 == 0 ? "site0" : "site1");
  }

  metrics::MetricsRegistry registry;
  serve::FlowQLServer server(db);
  server.attach_metrics(registry);
  server.start();
  std::printf("FlowQL server listening on 127.0.0.1:%u\n\n", server.port());

  serve::Client client("127.0.0.1", server.port());

  // 1. A query over the wire matches direct in-process execution.
  const char* flowql = "SELECT topk(3) FROM 0s..3600s";
  const serve::Client::Result result = client.query(flowql);
  std::printf("> %s\n%s\n", flowql, result.text.c_str());
  const std::string direct = flowdb::run_flowql(flowql, db).to_string();
  std::printf("byte-identical to direct execution: %s\n\n",
              result.text == direct ? "yes" : "NO (bug!)");

  // 2. A malformed statement comes back as a typed wire error, and the
  //    connection survives it.
  const serve::Client::Result bad = client.query("SELEKT nonsense");
  std::printf("> SELEKT nonsense\nwire error code=%u: %s\n\n",
              static_cast<unsigned>(bad.code), bad.message.c_str());

  // 3. A subscription pushes the live answer every 20 ms.
  const std::uint64_t sub = client.subscribe(flowql, 20);
  for (int i = 0; i < 2; ++i) {
    const serve::Client::Event event = client.wait_event();
    std::printf("subscription %llu event seq=%u (%zu bytes of table)\n",
                static_cast<unsigned long long>(event.subscription_id),
                event.seq, event.text.size());
  }
  client.unsubscribe(sub);
  std::printf("\n");

  // 4. The .metrics endpoint serves the registry snapshot over the wire.
  const serve::Client::Result metrics = client.metrics();
  std::printf("--- .metrics (serve.* / plan.* excerpt) ---\n");
  for (std::size_t pos = 0; pos < metrics.text.size();) {
    const std::size_t eol = metrics.text.find('\n', pos);
    const std::string line = metrics.text.substr(pos, eol - pos);
    if ((line.rfind("serve.", 0) == 0 || line.rfind("plan.", 0) == 0) &&
        line.find("bucket") == std::string::npos) {
      std::printf("%s\n", line.c_str());
    }
    pos = eol == std::string::npos ? metrics.text.size() : eol + 1;
  }

  server.stop();
  const auto stats = server.stats();
  std::printf("\nserved %llu requests (%llu bad) over %llu connections\n",
              static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.bad_requests),
              static_cast<unsigned long long>(stats.connections_accepted));
  return 0;
}
