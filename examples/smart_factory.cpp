// Smart factory end-to-end (the paper's Section II.A use case): machine
// sensors stream into per-line data stores arranged in a hierarchy; a hard
// safety trigger stops a machine the moment a fault spikes (control cycle);
// the predictive-maintenance application watches slow drifts and schedules
// maintenance through the controller (adaptive cycle); the manager provisions
// all summaries from the applications' declared requirements.
#include <cstdio>

#include "arch/application.hpp"
#include "arch/manager.hpp"
#include "common/bytes.hpp"
#include "sim/simulator.hpp"
#include "trace/sensorgen.hpp"

using namespace megads;

int main() {
  sim::Simulator simulator;
  store::DataStore line_store(StoreId(0), "line-0");
  arch::Manager manager;
  arch::Controller controller;
  controller.attach_actuator("10.0.1.0/24.speed", [](const arch::ActuationCommand& cmd) {
    std::printf("  [actuator] t=%6.1fs machine-1 speed -> %.2f (%s)\n",
                to_seconds(cmd.time), cmd.value, cmd.reason.c_str());
  });

  // The factory: 1 line x 4 machines x 8 sensors, 10 Hz sampling. Machine 2
  // degrades slowly; machine 1 suffers a hard fault at t = 20 min.
  trace::SensorGenConfig gen_config;
  gen_config.seed = 3;
  gen_config.lines = 1;
  gen_config.machines_per_line = 4;
  gen_config.sensors_per_machine = 8;
  gen_config.sample_period = 100 * kMillisecond;
  gen_config.degrading_fraction = 0.0;
  gen_config.base_level = 50.0;
  gen_config.faults.push_back(trace::FaultSpec{0, 1, 20 * kMinute, 2 * kMinute, 400.0});
  trace::SensorGenerator generator(gen_config);

  // Manager provisions summaries from application requirements (Fig. 3b):
  // per-machine time-bin statistics for maintenance...
  std::vector<arch::PredictiveMaintenanceApp::MachineFeed> feeds;
  for (std::uint16_t machine = 0; machine < 4; ++machine) {
    arch::AppRequirements requirements;
    requirements.app = AppId(1);
    requirements.description = "per-machine trend statistics";
    requirements.format = arch::SummaryFormat::kTimeBins;
    requirements.precision = 4096;
    requirements.epoch = kHour;
    requirements.storage = arch::StorageClass::kExpiration;
    requirements.storage_budget = static_cast<std::uint64_t>(kDay);
    for (std::uint16_t sensor = 0; sensor < 8; ++sensor) {
      requirements.sensors.push_back(
          SensorId(static_cast<std::uint32_t>(machine * 8 + sensor)));
    }
    // One slot per machine: distinguish by epoch offset trick is not needed —
    // the manager shares slots only for identical requirement shapes, so we
    // install directly per machine here.
    store::SlotConfig slot_config;
    slot_config.name = "timebin/machine-" + std::to_string(machine);
    slot_config.factory = arch::Manager::make_factory(requirements.format,
                                                      requirements.precision);
    slot_config.epoch = requirements.epoch;
    slot_config.storage = arch::Manager::make_storage(requirements.storage,
                                                      requirements.storage_budget);
    const AggregatorId slot = line_store.install(std::move(slot_config));
    for (const SensorId sensor : requirements.sensors) {
      line_store.subscribe(sensor, slot);
    }
    feeds.push_back({trace::machine_prefix(0, machine), slot});
  }
  // ...and a raw slot for the safety trigger, provisioned via the manager.
  arch::AppRequirements safety;
  safety.app = AppId(2);
  safety.description = "raw feed for hard safety limits";
  safety.format = arch::SummaryFormat::kRaw;
  safety.precision = 1 << 20;
  safety.epoch = kMinute;
  safety.storage = arch::StorageClass::kRoundRobin;
  safety.storage_budget = 4 << 20;
  manager.provision(line_store, safety);

  // Control cycle: hard limit on machine 1, reacting within one sample.
  store::TriggerSpec trigger;
  trigger.name = "hard-overload";
  trigger.kind = store::TriggerKind::kItemAbove;
  trigger.scope.with_src(trace::machine_prefix(0, 1));
  trigger.threshold = 250.0;
  trigger.cooldown = 30 * kSecond;
  trigger.action = [&](const store::TriggerEvent& event) {
    std::printf("  [trigger]  t=%6.1fs %s observed %.0f\n",
                to_seconds(event.time), event.name.c_str(), event.observed);
    controller.on_trigger(event);
  };
  line_store.install_trigger(std::move(trigger));

  arch::Rule stop_rule;
  stop_rule.name = "emergency-stop";
  stop_rule.owner = AppId(2);
  stop_rule.actuator = "10.0.1.0/24.speed";
  stop_rule.scope.with_src(trace::machine_prefix(0, 1));
  stop_rule.min_value = 0.0;
  stop_rule.max_value = 1.0;
  stop_rule.on_trigger_value = 0.0;
  controller.install_rule(stop_rule);

  // Adaptive cycle: predictive maintenance over the time-bin slots.
  arch::PredictiveMaintenanceApp::Config pm_config;
  pm_config.trend_window = 10 * kMinute;
  pm_config.failure_level = 58.0;
  pm_config.horizon = 3 * kHour;  // ignore noise-level drifts
  arch::PredictiveMaintenanceApp maintenance(AppId(1), line_store, feeds,
                                             controller, pm_config);
  maintenance.start(simulator, 5 * kMinute);

  // Make machine 2 drift upward by injecting a slow ramp on top of the
  // generator (modeling bearing wear).
  std::printf("running 40 virtual minutes of factory operation...\n");
  const SimTime end = 40 * kMinute;
  while (generator.now() + gen_config.sample_period <= end) {
    simulator.run_until(generator.now() + gen_config.sample_period);
    for (auto& reading : generator.tick()) {
      if (reading.machine == 2) {
        reading.value += 8.0 * to_seconds(reading.timestamp) / 3600.0;
      }
      line_store.ingest(
          SensorId(static_cast<std::uint32_t>(reading.machine * 8 + reading.sensor)),
          reading.to_item());
    }
    line_store.advance_to(generator.now());
  }

  std::printf("\n== maintenance orders ==\n");
  for (const auto& order : maintenance.orders()) {
    std::printf(
        "  machine %s: drift %.2f/h, failure predicted at t=%.0f min "
        "(issued t=%.0f min)\n",
        order.machine.to_string().c_str(), order.slope_per_hour,
        to_seconds(order.predicted_failure) / 60.0,
        to_seconds(order.issued) / 60.0);
  }

  std::printf("\n== manager resource report ==\n");
  for (const auto& report : manager.report()) {
    std::printf("  store '%s': %zu slots, %zu partitions, %s\n",
                report.name.c_str(), report.slots, report.partitions,
                format_bytes(report.memory_bytes).c_str());
  }
  std::printf("  (store holds %zu slots total, %s including app slots)\n",
              line_store.slots().size(),
              format_bytes(line_store.memory_bytes()).c_str());
  std::printf("\ncontroller handled %llu trigger(s), issued %zu command(s)\n",
              static_cast<unsigned long long>(controller.triggers_handled()),
              controller.log().size());
  return 0;
}
