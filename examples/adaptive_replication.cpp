// Adaptive replication walk-through (Section VII / Fig. 6): generate a
// partition access trace, replay it against each policy, and narrate the
// ski-rental trade-off with concrete numbers.
#include <cstdio>

#include "common/bytes.hpp"
#include "repl/simulate.hpp"

using namespace megads;

int main() {
  trace::QueryGenConfig config;
  config.seed = 2;
  config.partitions = 500;
  config.horizon = kDay;
  config.spawn_window = 12 * kHour;
  config.access_alpha = 1.1;   // heavy-tailed partition popularity
  config.mean_gap = 5 * kMinute;
  const auto trace = trace::generate_query_trace(config);

  Rng size_rng(9);
  std::vector<std::uint64_t> sizes(config.partitions);
  for (auto& size : sizes) {
    size = static_cast<std::uint64_t>(size_rng.pareto(1.0e6, 1.5));
  }

  std::printf("workload: %zu accesses over %zu partitions in 24 virtual hours\n",
              trace.events.size(), config.partitions);
  std::uint64_t demand = 0;
  for (const auto bytes : trace.bytes_per_partition) demand += bytes;
  std::printf("total result demand if everything is shipped: %s\n",
              format_bytes(demand).c_str());
  const std::uint64_t optimum = repl::offline_optimal_bytes(trace, sizes);
  std::printf("offline optimum (min(ship, replicate) per partition): %s\n\n",
              format_bytes(optimum).c_str());

  repl::AlwaysShip ship;
  repl::AlwaysReplicate replicate;
  repl::BreakEvenPolicy break_even;
  repl::DistributionPolicy::Config dist_config;
  dist_config.maturity = 3 * kHour;
  dist_config.refit_interval = 30 * kMinute;
  repl::DistributionPolicy distribution(dist_config);
  repl::OraclePolicy oracle(trace.bytes_per_partition);

  repl::ReplicationPolicy* policies[] = {&ship, &replicate, &break_even,
                                         &distribution, &oracle};
  std::printf("%-16s %12s %8s %12s %10s\n", "policy", "wan-volume", "vs-opt",
              "replications", "mean-lat");
  for (repl::ReplicationPolicy* policy : policies) {
    const auto outcome = repl::simulate_replication(trace, sizes, *policy);
    std::printf("%-16s %12s %7.2fx %12llu %8.1fms\n", outcome.policy.c_str(),
                format_bytes(outcome.total_wan_bytes()).c_str(),
                static_cast<double>(outcome.total_wan_bytes()) /
                    static_cast<double>(optimum),
                static_cast<unsigned long long>(outcome.replications),
                outcome.access_latency.mean() / 1000.0);
  }
  std::printf(
      "\nreading the table: break-even is the classical 2-competitive ski "
      "rental; the distribution policy learns the demand distribution from "
      "matured partitions (threshold ends at %.2f of partition size) and "
      "gets closer to the oracle.\n",
      distribution.threshold());
  return 0;
}
