// Quickstart: build a Flowtree from a synthetic router trace and run every
// Table II operator against it.
//
//   $ ./quickstart
//
// This is the 5-minute tour of the library's core primitive; see
// network_monitoring.cpp and smart_factory.cpp for the full architecture.
#include <cstdio>

#include "common/bytes.hpp"
#include "common/metrics.hpp"
#include "flowtree/flowtree.hpp"
#include "store/datastore.hpp"
#include "store/storage.hpp"
#include "trace/flowgen.hpp"

using namespace megads;

namespace {

void print_rows(const char* title, const std::vector<flowtree::KeyScore>& rows,
                std::size_t limit = 5) {
  std::printf("\n%s\n", title);
  std::size_t shown = 0;
  for (const auto& row : rows) {
    if (shown++ == limit) {
      std::printf("  ... (%zu more)\n", rows.size() - limit);
      break;
    }
    std::printf("  %-55s %12.0f\n", row.key.to_string().c_str(), row.score);
  }
  if (rows.empty()) std::printf("  (empty)\n");
}

}  // namespace

int main() {
  // 1. A synthetic flow workload: Zipf-popular source networks, heavy-tailed
  //    flow sizes — the statistical shape of real router exports.
  trace::FlowGenConfig gen_config;
  gen_config.seed = 7;
  gen_config.flows_per_second = 1000.0;
  trace::FlowGenerator generator(gen_config);

  // 2. A Flowtree with a 4096-node budget: it self-compresses while ingesting,
  //    folding unpopular flows into their generalized parents.
  flowtree::FlowtreeConfig config;
  config.node_budget = 4096;
  flowtree::Flowtree tree(config);

  const auto records = generator.generate(100000);
  for (const auto& record : records) {
    tree.add(record.key, static_cast<double>(record.bytes));
  }
  std::printf("ingested %zu flows -> %zu tree nodes (%s), total weight %s\n",
              records.size(), tree.size(),
              format_bytes(tree.memory_bytes()).c_str(),
              format_si(tree.total_weight()).c_str());

  // 3. Table II operators.
  print_rows("Top-k: the 5 heaviest flows", tree.top_k(5));
  print_rows("HHH(phi=0.02): hierarchical heavy hitters", tree.hhh(0.02));

  flow::FlowKey top_network;
  top_network.with_src(generator.network(0));
  std::printf("\nQuery: bytes from %s = %.0f\n",
              generator.network(0).to_string().c_str(), tree.query(top_network));
  print_rows("Drilldown: children of the wildcard root",
             tree.drilldown(flow::FlowKey{}));
  print_rows("Above-x: flows above 0.1%% of total",
             tree.above(tree.total_weight() / 1000.0), 3);

  // 4. Combine summaries from another site (Merge) and compare them (Diff).
  trace::FlowGenConfig other_site = gen_config;
  other_site.site = 1;
  trace::FlowGenerator other_generator(other_site);
  flowtree::Flowtree other(config);
  for (const auto& record : other_generator.generate(100000)) {
    other.add(record.key, static_cast<double>(record.bytes));
  }

  flowtree::Flowtree merged = tree;   // value semantics: cheap to reason about
  merged.merge(other);
  std::printf("\nMerge: %zu + %zu nodes -> %zu nodes, weight %s\n", tree.size(),
              other.size(), merged.size(),
              format_si(merged.total_weight()).c_str());

  flowtree::Flowtree delta = tree;
  delta.diff(other);
  print_rows("Diff: site-0 minus site-1 (largest shifts)", delta.top_k(3));

  // 5. Compress to a coarser summary and ship it.
  merged.compress(512);
  const auto wire = merged.encode();
  std::printf("\nCompress(512) + encode: %zu nodes, %s on the wire; total "
              "weight preserved: %s\n",
              merged.size(), format_bytes(wire.size()).c_str(),
              format_si(merged.total_weight()).c_str());
  const auto decoded = flowtree::Flowtree::decode(wire, config);
  std::printf("decode round-trip: %zu nodes, root query %.0f\n", decoded.size(),
              decoded.query(flow::FlowKey{}));

  // 6. Observability: host the tree in a DataStore, ingest the same trace as
  //    one batch per epoch, and dump the metrics registry.
  metrics::MetricsRegistry registry;
  store::DataStore store(StoreId(0), "quickstart");
  store.attach_metrics(registry);
  store::SlotConfig slot_config;
  slot_config.name = "flowtree";
  slot_config.factory = [config] { return std::make_unique<flowtree::Flowtree>(config); };
  slot_config.epoch = kMinute;
  slot_config.storage = std::make_unique<store::RoundRobinStorage>(8u << 20);
  slot_config.subscribe_all = true;
  store.install(std::move(slot_config));

  std::vector<primitives::StreamItem> batch;
  batch.reserve(records.size());
  for (const auto& record : records) {
    primitives::StreamItem item;
    item.key = record.key;
    item.value = static_cast<double>(record.bytes);
    item.timestamp = record.timestamp;
    batch.push_back(item);
  }
  store.ingest_batch(SensorId(0), batch);
  std::printf("\n== metrics snapshot ==\n%s",
              registry.snapshot().to_string().c_str());
  return 0;
}
